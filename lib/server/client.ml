type t = { fd : Unix.file_descr }

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let connect_tcp ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith ("cannot resolve " ^ host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t ?id ?deadline_ms ~op params =
  let req = { Protocol.id; op; deadline_ms; params } in
  Frame.write t.fd (Frame.encode (Protocol.request_to_string req))

let recv ?max_payload t =
  match Frame.read ?max_payload t.fd with
  | Ok payload -> Protocol.parse_reply payload
  | Error Frame.Closed -> Error "connection closed"
  | Error (Frame.Corrupt msg) -> Error msg

let call t ?id ?deadline_ms ~op params =
  match send t ?id ?deadline_ms ~op params with
  | Error e -> Error e
  | Ok () -> recv t

let oneshot ~socket ?deadline_ms ~op params =
  match connect ~socket with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message e))
  | t ->
    Fun.protect ~finally:(fun () -> close t) (fun () ->
        call t ?deadline_ms ~op params)

type config = {
  socket_path : string;
  tcp : (string * int) option;
  workers : int;
  queue_depth : int;
  jobs : int;
  cache_dir : string option;
  max_frame : int;
  obs : bool;
  access_log : string option;
  log_sample : int;
}

let default_config ~socket_path =
  {
    socket_path;
    tcp = None;
    workers = 2;
    queue_depth = 64;
    jobs = 1;
    cache_dir = None;
    max_frame = Frame.default_max_payload;
    (* off by default: embedders (tests, the bench harness) opt in; the
       CLI serve subcommand turns it on *)
    obs = false;
    access_log = None;
    log_sample = 1;
  }

module Json = Telemetry.Json

(* --- telemetry instruments (mirrors of the exact atomic counters) --- *)

let span_request = Telemetry.span "server.request"
let span_reply_write = Telemetry.span "server.reply_write"
let c_requests = Telemetry.counter "server.requests"
let c_shed = Telemetry.counter "server.shed"
let c_deadline = Telemetry.counter "server.deadline_exceeded"
let c_cancelled = Telemetry.counter "server.cancelled"
let c_malformed = Telemetry.counter "server.malformed"
let g_active = Telemetry.gauge "server.active"

(* A connection is shared by its reader thread and any number of queued
   jobs; the fd closes only when the last holder releases it, so a
   worker never writes into a recycled descriptor number. [wmutex]
   serializes reply frames (replies are written in completion order,
   ids correlate them). *)
type conn = {
  fd : Unix.file_descr;
  alive : bool Atomic.t;
  wmutex : Mutex.t;
  refs : int Atomic.t;
}

type job = {
  conn : conn;
  req : Protocol.request;
  deadline : float option;  (** absolute, Unix.gettimeofday clock *)
  trace : Telemetry.Trace.t option;
      (** created at frame decode for ["trace": true] requests *)
  enqueued_ns : int;  (** monotonic enqueue time; 0 when untimed *)
}

type stats = {
  requests : int;
  shed : int;
  deadline_exceeded : int;
  cancelled : int;
  malformed : int;
  client_gone : int;
}

type t = {
  cfg : config;
  cache : Runner.Cache.t;
  listeners : Unix.file_descr list;
  mutable service : job Parallel.Service.t option;
  stop_flag : bool Atomic.t;
  mutable acceptor : Thread.t option;
  conns_mutex : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  active : int Atomic.t;
  s_requests : int Atomic.t;
  s_shed : int Atomic.t;
  s_deadline : int Atomic.t;
  s_cancelled : int Atomic.t;
  s_malformed : int Atomic.t;
  s_client_gone : int Atomic.t;
  alog : Obs.Access_log.t option;
}

let cache t = t.cache

let stats t =
  {
    requests = Atomic.get t.s_requests;
    shed = Atomic.get t.s_shed;
    deadline_exceeded = Atomic.get t.s_deadline;
    cancelled = Atomic.get t.s_cancelled;
    malformed = Atomic.get t.s_malformed;
    client_gone = Atomic.get t.s_client_gone;
  }

let retain conn = Atomic.incr conn.refs

let release conn =
  if Atomic.fetch_and_add conn.refs (-1) = 1 then
    try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send_reply t conn payload =
  if Atomic.get conn.alive then begin
    Mutex.lock conn.wmutex;
    let r =
      Telemetry.time span_reply_write (fun () ->
          Frame.write conn.fd (Frame.encode payload))
    in
    Mutex.unlock conn.wmutex;
    match r with
    | Ok () -> ()
    | Error _ ->
      (* EPIPE/ECONNRESET with SIGPIPE ignored: the client is gone.
         Poison the connection so queued work for it is dropped. *)
      Atomic.set conn.alive false;
      Atomic.incr t.s_client_gone
  end

(* --- request execution (worker domain) --- *)

(* Account one finished (or dropped) request on every exit path:
   optional reply, per-op SLO windows, access-log line. With the obs
   plane disabled and the request untraced, the timing reads collapse
   to zero-cost branches. *)
let account t job ~outcome ~queue_ns ~dequeue_ns ~timed payload =
  let service_ns =
    if timed && dequeue_ns > 0 then max 0 (Telemetry.now_ns () - dequeue_ns)
    else 0
  in
  (* account before replying: a client that has its reply in hand must
     see its request already counted by an immediate metrics scrape *)
  if Obs.enabled () then
    Obs.record ~op:job.req.Protocol.op ~outcome ~queue_ns ~service_ns ();
  (match t.alog with
  | Some log ->
    (* untimed requests log null timings, not fake zeroes *)
    let opt v = if timed then Some v else None in
    Obs.Access_log.record log ~id:job.req.Protocol.id
      ~op:job.req.Protocol.op ~outcome ~queue_ns:(opt queue_ns)
      ~service_ns:(opt service_ns)
      ~bytes:(match payload with Some p -> String.length p | None -> 0)
      ~traced:(job.trace <> None)
  | None -> ());
  match payload with Some p -> send_reply t job.conn p | None -> ()

let execute t job =
  Fun.protect
    ~finally:(fun () -> release job.conn)
    (fun () ->
      let obs_on = Obs.enabled () in
      let timed = obs_on || job.trace <> None in
      let dequeue_ns = if timed then Telemetry.now_ns () else 0 in
      let queue_ns =
        if timed && job.enqueued_ns > 0 then
          max 0 (dequeue_ns - job.enqueued_ns)
        else 0
      in
      (match job.trace with
      | Some tr when job.enqueued_ns > 0 ->
        Telemetry.Trace.add tr "queue_wait" ~start_ns:job.enqueued_ns
          ~dur_ns:queue_ns
      | _ -> ());
      if obs_on then begin
        (match t.service with
        | Some s -> Obs.set_queue_depth (Parallel.Service.stats s).st_queued
        | None -> ());
        Obs.incr_inflight ()
      end;
      let account ~outcome payload =
        account t job ~outcome ~queue_ns ~dequeue_ns ~timed payload;
        if obs_on then Obs.decr_inflight ()
      in
      if not (Atomic.get job.conn.alive) then begin
        Atomic.incr t.s_cancelled;
        Telemetry.incr c_cancelled;
        account ~outcome:(Obs.Err Protocol.Cancelled) None
      end
      else begin
        let expired () =
          match job.deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        in
        if expired () then begin
          Atomic.incr t.s_deadline;
          Telemetry.incr c_deadline;
          account
            ~outcome:(Obs.Err Protocol.Deadline_exceeded)
            (Some
               (Protocol.error_reply ~id:job.req.Protocol.id
                  Protocol.Deadline_exceeded
                  "deadline expired before execution finished"))
        end
        else begin
          Telemetry.set_gauge g_active
            (float_of_int (Atomic.fetch_and_add t.active 1 + 1));
          let check () =
            if not (Atomic.get job.conn.alive) then raise Ops.Cancelled;
            if expired () then raise Ops.Deadline_exceeded
          in
          let env =
            {
              Ops.cache = t.cache;
              jobs = t.cfg.jobs;
              check;
              trace = job.trace;
            }
          in
          let id = job.req.Protocol.id in
          (match
             Telemetry.time span_request (fun () ->
                 Ops.dispatch env ~op:job.req.Protocol.op
                   job.req.Protocol.params)
           with
          | Ok result ->
            account ~outcome:Obs.Ok_reply
              (Some (Protocol.ok_reply ~id result))
          | Error msg ->
            account
              ~outcome:(Obs.Err Protocol.Bad_request)
              (Some (Protocol.error_reply ~id Protocol.Bad_request msg))
          | exception Ops.Cancelled ->
            Atomic.incr t.s_cancelled;
            Telemetry.incr c_cancelled;
            account ~outcome:(Obs.Err Protocol.Cancelled) None
          | exception Ops.Deadline_exceeded ->
            Atomic.incr t.s_deadline;
            Telemetry.incr c_deadline;
            account
              ~outcome:(Obs.Err Protocol.Deadline_exceeded)
              (Some
                 (Protocol.error_reply ~id Protocol.Deadline_exceeded
                    "deadline expired during execution"))
          | exception exn ->
            (* an op blew up; the daemon must not *)
            account
              ~outcome:(Obs.Err Protocol.Internal)
              (Some
                 (Protocol.error_reply ~id Protocol.Internal
                    (Printexc.to_string exn))));
          Telemetry.set_gauge g_active
            (float_of_int (Atomic.fetch_and_add t.active (-1) - 1))
        end
      end)

(* --- per-connection reader thread --- *)

let handle_conn t conn =
  let rec loop () =
    match Frame.read ~max_payload:t.cfg.max_frame conn.fd with
    | Error Frame.Closed -> ()
    | Error (Frame.Corrupt msg) ->
      (* the byte stream is desynced: answer, then hang up *)
      Atomic.incr t.s_malformed;
      Telemetry.incr c_malformed;
      send_reply t conn
        (Protocol.error_reply ~id:None Protocol.Bad_request
           ("bad frame: " ^ msg))
    | Ok payload -> (
      (* parse time is measured only while the obs plane is on (one
         atomic read on the disabled path) *)
      let pt0 = if Obs.enabled () then Telemetry.now_ns () else 0 in
      match Protocol.parse_request payload with
      | Error msg ->
        (* framing was sound, only this request is bad: keep serving *)
        Atomic.incr t.s_malformed;
        Telemetry.incr c_malformed;
        send_reply t conn
          (Protocol.error_reply ~id:None Protocol.Bad_request msg);
        loop ()
      | Ok req ->
        Atomic.incr t.s_requests;
        Telemetry.incr c_requests;
        (* the request-scoped trace is born here, at frame decode *)
        let trace =
          match Json.member "trace" req.Protocol.params with
          | Some (Json.Bool true) ->
            let id =
              match req.Protocol.id with
              | Some i -> string_of_int i
              | None -> req.Protocol.op
            in
            let tr = Telemetry.Trace.create ~id () in
            if pt0 > 0 then
              Telemetry.Trace.add tr "parse" ~start_ns:pt0
                ~dur_ns:(max 0 (Telemetry.now_ns () - pt0));
            Some tr
          | _ -> None
        in
        let deadline =
          Option.map
            (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
            req.Protocol.deadline_ms
        in
        let enqueued_ns =
          if Obs.enabled () || trace <> None then Telemetry.now_ns () else 0
        in
        let job = { conn; req; deadline; trace; enqueued_ns } in
        retain conn;
        let admitted =
          (not (Atomic.get t.stop_flag))
          &&
          match t.service with
          | Some service -> Parallel.Service.submit service job
          | None -> false
        in
        if not admitted then begin
          release conn;
          Atomic.incr t.s_shed;
          Telemetry.incr c_shed;
          let reply =
            Protocol.error_reply ~id:req.Protocol.id Protocol.Overloaded
              "admission queue full"
          in
          if Obs.enabled () then
            Obs.record ~op:req.Protocol.op
              ~outcome:(Obs.Err Protocol.Overloaded) ~queue_ns:0 ~service_ns:0
              ();
          (match t.alog with
          | Some log ->
            (* a shed never queued or executed: no timings to report *)
            Obs.Access_log.record log ~id:req.Protocol.id ~op:req.Protocol.op
              ~outcome:(Obs.Err Protocol.Overloaded) ~queue_ns:None
              ~service_ns:None ~bytes:(String.length reply)
              ~traced:(trace <> None)
          | None -> ());
          send_reply t conn reply
        end;
        loop ())
  in
  (try loop () with _ -> ());
  Atomic.set conn.alive false;
  (* self-deregister so a long-lived daemon's list doesn't grow without
     bound; stop joins whatever snapshot it takes *)
  Mutex.lock t.conns_mutex;
  t.conns <- List.filter (fun (c, _) -> c != conn) t.conns;
  Mutex.unlock t.conns_mutex;
  release conn

(* --- listeners and accept loop --- *)

let listen_unix path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    (* distinguish a live server from a stale socket left by a crash *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      failwith (path ^ ": a server is already listening here")
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      Unix.close probe;
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception e ->
      Unix.close probe;
      raise e)
  | _ -> failwith (path ^ " exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let listen_tcp (host, port) =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith ("cannot resolve " ^ host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select t.listeners [] [] 0.2 with
    | readable, _, _ ->
      List.iter
        (fun lfd ->
          if not (Atomic.get t.stop_flag) then
            match Unix.accept ~cloexec:true lfd with
            | fd, _ ->
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let conn =
                {
                  fd;
                  alive = Atomic.make true;
                  wmutex = Mutex.create ();
                  refs = Atomic.make 1;
                }
              in
              let th = Thread.create (fun () -> handle_conn t conn) () in
              Mutex.lock t.conns_mutex;
              t.conns <- (conn, th) :: t.conns;
              Mutex.unlock t.conns_mutex
            | exception Unix.Unix_error _ -> ())
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Obs.set_enabled cfg.obs;
  (* bound metric cardinality: only dispatchable ops get their own
     cell; client-invented names fold into "unknown" *)
  Obs.set_known_ops Ops.op_names;
  let ctx =
    Runner.Exec.create_ctx ~jobs:(max 1 cfg.jobs) ?cache_dir:cfg.cache_dir ()
  in
  let unix_fd = listen_unix cfg.socket_path in
  let listeners =
    unix_fd
    ::
    (match cfg.tcp with
    | Some hp -> (
      try [ listen_tcp hp ]
      with e ->
        Unix.close unix_fd;
        (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
        raise e)
    | None -> [])
  in
  let t =
    {
      cfg;
      cache = ctx.Runner.Exec.cache;
      listeners;
      service = None;
      stop_flag = Atomic.make false;
      acceptor = None;
      conns_mutex = Mutex.create ();
      conns = [];
      active = Atomic.make 0;
      s_requests = Atomic.make 0;
      s_shed = Atomic.make 0;
      s_deadline = Atomic.make 0;
      s_cancelled = Atomic.make 0;
      s_malformed = Atomic.make 0;
      s_client_gone = Atomic.make 0;
      alog =
        Option.map
          (fun path -> Obs.Access_log.open_ ~path ~sample:cfg.log_sample)
          cfg.access_log;
    }
  in
  t.service <-
    Some
      (Parallel.Service.create ~workers:(max 1 cfg.workers)
         ~queue_depth:(max 1 cfg.queue_depth)
         ~handler:(fun job -> execute t job));
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
    (* drain: the queue empties through the workers, replies included *)
    Option.iter Parallel.Service.shutdown t.service;
    t.service <- None;
    (* unblock readers parked in Unix.read, then join them *)
    Mutex.lock t.conns_mutex;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun (conn, _) ->
        Atomic.set conn.alive false;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    (* every admitted job has been executed and logged: flush the
       access log so a SIGTERM'd daemon leaves well-formed lines *)
    Option.iter
      (fun log ->
        Obs.Access_log.flush log;
        Obs.Access_log.close log)
      t.alog
  end

let serve cfg =
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle on_signal))
    [ Sys.sigterm; Sys.sigint ];
  let t = start cfg in
  Printf.eprintf "statsim serve: listening on %s%s (workers %d, queue %d)\n%!"
    cfg.socket_path
    (match cfg.tcp with
    | Some (h, p) -> Printf.sprintf " and %s:%d" h p
    | None -> "")
    (max 1 cfg.workers)
    (max 1 cfg.queue_depth);
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop t;
  let s = stats t in
  Printf.eprintf
    "statsim serve: drained; %d requests (%d shed, %d deadline-exceeded, %d \
     cancelled, %d malformed)\n\
     %!"
    s.requests s.shed s.deadline_exceeded s.cancelled s.malformed

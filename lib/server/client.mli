(** A blocking client for the [statsim serve] protocol — what the
    [statsim client] subcommand, the bench harness and the tests speak.

    A connection may pipeline: several {!send}s before the matching
    {!recv}s. Replies arrive in completion order; correlate with [id]s
    when it matters. {!call} is the simple send-one/await-one shape,
    {!oneshot} additionally owns the connection. *)

type t

val connect : socket:string -> t
(** Unix-domain connect; raises [Unix.Unix_error] when nothing
    listens. *)

val connect_tcp : host:string -> port:int -> t
val close : t -> unit

val send :
  t ->
  ?id:int ->
  ?deadline_ms:int ->
  op:string ->
  Telemetry.Json.t ->
  (unit, string) result

val recv : ?max_payload:int -> t -> (Protocol.reply, string) result
(** One reply frame. [Error] covers transport loss ("connection
    closed") and protocol corruption. *)

val call :
  t ->
  ?id:int ->
  ?deadline_ms:int ->
  op:string ->
  Telemetry.Json.t ->
  (Protocol.reply, string) result

val oneshot :
  socket:string ->
  ?deadline_ms:int ->
  op:string ->
  Telemetry.Json.t ->
  (Protocol.reply, string) result
(** Connect, {!call}, close — including connect failures as [Error]
    rather than an exception. *)

module Json = Telemetry.Json

exception Cancelled
exception Deadline_exceeded

type env = {
  cache : Runner.Cache.t;
  jobs : int;
  check : unit -> unit;
  trace : Telemetry.Trace.t option;
}

let default_env ?jobs ?cache_dir ?(check = fun () -> ()) () =
  let ctx = Runner.Exec.create_ctx ?jobs ?cache_dir () in
  {
    cache = ctx.Runner.Exec.cache;
    jobs = ctx.Runner.Exec.jobs;
    check;
    trace = None;
  }

(* Run a stage under a named child span of the request's trace; exactly
   [f ()] for untraced requests. *)
let tspan env name f =
  match env.trace with
  | None -> f ()
  | Some tr -> Telemetry.Trace.span tr name f

let op_names =
  [
    "ping"; "cache-stats"; "simulate"; "replicate"; "estimate"; "diag";
    "experiment"; "dse"; "sleep"; "telemetry"; "metrics";
  ]

(* --- params decoding --- *)

exception Bad_param of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_param m)) fmt

let int_exn ~what = function
  | Json.Num v when Float.is_integer v && Float.abs v < 1e15 ->
    int_of_float v
  | _ -> bad "%S must be an integral number" what

let opt_field params k decode =
  match Json.member k params with
  | None | Some Json.Null -> None
  | Some j -> Some (decode ~what:k j)

let int_opt params k = opt_field params k int_exn

let int_def params k default =
  Option.value (int_opt params k) ~default

let float_opt params k =
  opt_field params k (fun ~what -> function
    | Json.Num v -> v
    | _ -> bad "%S must be a number" what)

let str_opt params k =
  opt_field params k (fun ~what -> function
    | Json.Str s -> s
    | _ -> bad "%S must be a string" what)

let str_def params k default = Option.value (str_opt params k) ~default

let bool_def params k default =
  Option.value
    (opt_field params k (fun ~what -> function
       | Json.Bool b -> b
       | _ -> bad "%S must be a boolean" what))
    ~default

let str_list params k =
  match Json.member k params with
  | None | Some Json.Null -> []
  | Some (Json.Arr items) ->
    List.map
      (function Json.Str s -> s | _ -> bad "%S must be an array of strings" k)
      items
  | Some _ -> bad "%S must be an array of strings" k

(* --- shared pieces --- *)

let find_spec name =
  match Workload.Suite.find name with
  | spec -> spec
  | exception Not_found ->
    bad "unknown workload %S; try: %s" name
      (String.concat " " Workload.Suite.names)

(* the same stream key Exp_common.src_key builds for an Int_src, so a
   server answering both `simulate` and `experiment` shares entries *)
let stream_key ~bench ~length = Printf.sprintf "int:%s:o0:n%d" bench length

(* A profile either loaded from a file (with the CLI's -k mismatch
   warning) or collected through the shared cache. *)
let collect_profile env ~warn cfg ~bench ~length ~k ~profile_file =
  tspan env "cache.profile" @@ fun () ->
  match profile_file with
  | Some path ->
    let p = Profile.Serialize.load_file path in
    (match k with
    | Some k when k <> p.Profile.Stat_profile.k ->
      warn
        (Printf.sprintf
           "warning: -k %d ignored: profile %s was collected with k=%d" k path
           p.Profile.Stat_profile.k)
    | Some _ | None -> ());
    p
  | None ->
    let spec = find_spec bench in
    Runner.Cache.profile env.cache ?k cfg
      ~stream_key:(stream_key ~bench ~length) (fun () ->
        Workload.Suite.stream spec ~length)

let result_obj ?(extra = []) ~warnings buf =
  let fields = [ ("output", Json.Str (Buffer.contents buf)) ] @ extra in
  let fields =
    match List.rev warnings with
    | [] -> fields
    | ws -> fields @ [ ("warnings", Json.Arr (List.map (fun w -> Json.Str w) ws)) ]
  in
  Ok (Json.Obj fields)

(* --- simulate / replicate --- *)

(* [force_replicas] is the `replicate` op: same engine, but always the
   multi-seed dispersion report (default 4 replicas). *)
let simulate env ~force_replicas params =
  let bench = str_def params "bench" "gcc" in
  let length = int_def params "length" 300_000 in
  let syn = int_def params "synthetic" 40_000 in
  let seed = int_def params "seed" 42 in
  let k = int_opt params "k" in
  let profile_file = str_opt params "profile" in
  let stream = bool_def params "stream" false in
  let compile = not (bool_def params "no_compile" false) in
  let replicas =
    match int_opt params "replicas" with
    | Some n -> Some n
    | None -> if force_replicas then Some 4 else None
  in
  let ci_target = float_opt params "ci_target" in
  let stratify = bool_def params "stratify" false in
  let control_variate = bool_def params "control_variate" true in
  let strata = int_opt params "strata" in
  let pilot = int_opt params "pilot" in
  let jobs = max 1 (int_def params "jobs" env.jobs) in
  let json = bool_def params "json" false in
  let cfg = Config.Machine.baseline in
  let warnings = ref [] in
  let warn m = warnings := m :: !warnings in
  let collect () =
    collect_profile env ~warn cfg ~bench ~length ~k ~profile_file
  in
  let buf = Buffer.create 512 in
  (match (replicas, ci_target) with
  | None, None when not stratify ->
    let spec = find_spec bench in
    env.check ();
    let eds =
      tspan env "cache.reference" (fun () ->
          Runner.Cache.reference env.cache cfg
            ~stream_key:(stream_key ~bench ~length) (fun () ->
              Workload.Suite.stream spec ~length))
    in
    env.check ();
    let ss =
      let p = collect () in
      env.check ();
      if compile then begin
        (* the cached plan samples bit-identically to a fresh
           Generate.generate ~compile, so this equals the one-shot
           Statsim.run_profile/simulate_stream path byte-for-byte *)
        let plan =
          tspan env "cache.plan" (fun () ->
              Runner.Cache.plan env.cache ~target_length:syn p)
        in
        env.check ();
        tspan env "simulate.run" (fun () ->
            if stream then Statsim.run_plan cfg plan ~seed
            else
              Statsim.simulate cfg (Synth.Generate.generate_of_plan plan ~seed))
      end
      else
        tspan env "simulate.run" (fun () ->
            if stream then
              Statsim.simulate_stream ~compile:false ~target_length:syn cfg p
                ~seed
            else
              Statsim.run_profile ~compile:false ~target_length:syn cfg p ~seed)
    in
    Printf.bprintf buf "%-22s %10s %10s %8s\n" "" "EDS" "statsim" "error";
    let line name get =
      Printf.bprintf buf "%-22s %10.3f %10.3f %7.1f%%\n" name (get eds)
        (get ss)
        (100.0
        *. Stats.Summary.absolute_error ~reference:(get eds)
             ~predicted:(get ss))
    in
    line "IPC" (fun r -> r.Statsim.ipc);
    line "EPC" (fun r -> r.Statsim.epc);
    line "EDP" (fun r -> r.Statsim.edp);
    Printf.bprintf buf "%-22s %10.2f %10.2f\n" "MPKI"
      (Uarch.Metrics.mpki eds.Statsim.metrics)
      (Uarch.Metrics.mpki ss.Statsim.metrics)
  | _ when stratify ->
    (* variance-aware replication: stratified seeds + control variate *)
    let p = collect () in
    env.check ();
    let r =
      tspan env "replicate.run" (fun () ->
          match ci_target with
          | Some ci_target ->
            Synth.Stratify.run_ci ~jobs ~stream ~check:env.check
              ~target_length:syn ?strata ?pilot ~control_variate
              ?max_replicas:replicas cfg p ~master_seed:seed ~ci_target
          | None ->
            Synth.Stratify.run ~jobs ~stream ~check:env.check
              ~target_length:syn ?strata ?pilot ~control_variate cfg p
              ~master_seed:seed
              ~replicas:(Option.value replicas ~default:16))
    in
    tspan env "render" (fun () ->
        if json then
          Buffer.add_string buf
            (Json.to_string (Synth.Stratify.to_json r) ^ "\n")
        else begin
          let ppf = Format.formatter_of_buffer buf in
          Synth.Stratify.render_text ppf r;
          Format.pp_print_flush ppf ()
        end)
  | _ ->
    (* replication mode: dispersion across seeds, no EDS reference *)
    let p = collect () in
    env.check ();
    let r =
      tspan env "replicate.run" (fun () ->
          match ci_target with
          | Some ci_target ->
            Synth.Replicate.run_ci ~jobs ~stream ~compile ~check:env.check
              ~target_length:syn ?min_replicas:replicas cfg p ~master_seed:seed
              ~ci_target
          | None ->
            Synth.Replicate.run ~jobs ~stream ~compile ~check:env.check
              ~target_length:syn cfg p ~master_seed:seed
              ~replicas:(Option.value replicas ~default:4))
    in
    tspan env "render" (fun () ->
        if json then
          Buffer.add_string buf
            (Json.to_string (Synth.Replicate.to_json r) ^ "\n")
        else begin
          let ppf = Format.formatter_of_buffer buf in
          Synth.Replicate.render_text ppf r;
          Format.pp_print_flush ppf ()
        end));
  result_obj ~warnings:!warnings buf

(* --- estimate --- *)

let estimate_json (e : Analytical.Steady_state.estimate) =
  let method_name =
    match e.solution.solved_by with
    | Analytical.Steady_state.Direct -> "direct"
    | Analytical.Steady_state.Power -> "power"
  in
  Json.Obj
    [
      ("nodes", Json.Num (float_of_int e.nodes));
      ("dead_ends", Json.Num (float_of_int e.dead_ends));
      ("method", Json.Str method_name);
      ("iterations", Json.Num (float_of_int e.solution.iterations));
      ("residual", Json.Num e.solution.residual);
      ( "mix",
        Json.Obj
          (List.map
             (fun (c, share) -> (Isa.Iclass.to_string c, Json.Num share))
             e.mix) );
      ( "cpi",
        Json.Obj
          [
            ("base", Json.Num e.breakdown.Analytical.base_cpi);
            ("branch", Json.Num e.breakdown.Analytical.branch_cpi);
            ("imem", Json.Num e.breakdown.Analytical.imem_cpi);
            ("dmem", Json.Num e.breakdown.Analytical.dmem_cpi);
            ("total", Json.Num e.breakdown.Analytical.total_cpi);
          ] );
      ("ipc", Json.Num e.ipc);
    ]

let render_estimate buf (e : Analytical.Steady_state.estimate) =
  Printf.bprintf buf
    "steady-state estimate: %d nodes (%d dead ends), solved %s\n" e.nodes
    e.dead_ends
    (match e.solution.solved_by with
    | Analytical.Steady_state.Direct -> "directly"
    | Analytical.Steady_state.Power ->
      Printf.sprintf "by power iteration (%d iterations)"
        e.solution.iterations);
  Printf.bprintf buf "  residual %.2e\n" e.solution.residual;
  let ppf = Format.formatter_of_buffer buf in
  Analytical.pp_breakdown ppf e.breakdown;
  Format.pp_print_flush ppf ();
  Buffer.add_char buf '\n';
  Buffer.add_string buf "  stationary mix:";
  List.iter
    (fun (c, share) ->
      if share > 0.0005 then
        Printf.bprintf buf " %s %.1f%%" (Isa.Iclass.to_string c)
          (100.0 *. share))
    e.mix;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "  estimated IPC %.4f\n" e.ipc

(* Zero-simulation instant answer: the stationary solve of the reduced
   SFG.  The profile comes through the shared cache (the only slow
   part), the solved estimate through its own memo tier. *)
let estimate env params =
  let bench = str_def params "bench" "gcc" in
  let length = int_def params "length" 300_000 in
  let syn = int_def params "synthetic" 40_000 in
  let reduction = int_opt params "reduction" in
  let k = int_opt params "k" in
  let profile_file = str_opt params "profile" in
  let json = bool_def params "json" false in
  let cfg = Config.Machine.baseline in
  let warnings = ref [] in
  let warn m = warnings := m :: !warnings in
  let p = collect_profile env ~warn cfg ~bench ~length ~k ~profile_file in
  env.check ();
  let e =
    tspan env "estimate.solve" (fun () ->
        match reduction with
        | Some r -> Runner.Cache.estimate env.cache ~reduction:r cfg p
        | None -> Runner.Cache.estimate env.cache ~target_length:syn cfg p)
  in
  let buf = Buffer.create 512 in
  let extra = [ ("estimate", estimate_json e) ] in
  tspan env "render" (fun () ->
      if json then Buffer.add_string buf (Json.to_string (estimate_json e) ^ "\n")
      else render_estimate buf e);
  result_obj ~extra ~warnings:!warnings buf

(* --- diag --- *)

let diag env params =
  let bench = str_def params "bench" "gcc" in
  let length = int_def params "length" 300_000 in
  let syn = int_def params "synthetic" 40_000 in
  let reduction = int_opt params "reduction" in
  let seed = int_def params "seed" 42 in
  let k = int_opt params "k" in
  let profile_file = str_opt params "profile" in
  let compile = not (bool_def params "no_compile" false) in
  let json = bool_def params "json" false in
  let check_eps = float_opt params "check" in
  let eds = bool_def params "eds" false in
  let cfg = Config.Machine.baseline in
  let warnings = ref [] in
  let warn m = warnings := m :: !warnings in
  let p = collect_profile env ~warn cfg ~bench ~length ~k ~profile_file in
  env.check ();
  let tr =
    if compile then begin
      let plan =
        tspan env "cache.plan" (fun () ->
            match reduction with
            | Some r -> Runner.Cache.plan env.cache ~reduction:r p
            | None -> Runner.Cache.plan env.cache ~target_length:syn p)
      in
      env.check ();
      tspan env "generate" (fun () ->
          Synth.Generate.generate_of_plan plan ~seed)
    end
    else
      tspan env "generate" (fun () ->
          match reduction with
          | Some r ->
            Synth.Generate.generate ~compile:false ~reduction:r p ~seed
          | None ->
            Synth.Generate.generate ~compile:false ~target_length:syn p ~seed)
  in
  env.check ();
  let d = tspan env "diag.compare" (fun () -> Diag.compare ~label:bench p tr) in
  let metrics =
    if not eds then None
    else begin
      let spec = find_spec bench in
      env.check ();
      let eds_res =
        tspan env "cache.reference" (fun () ->
            Runner.Cache.reference env.cache cfg
              ~stream_key:(stream_key ~bench ~length) (fun () ->
                Workload.Suite.stream spec ~length))
      in
      let syn_m = Synth.Run.run cfg tr in
      Some (Diag.compare_metrics ~eds:eds_res.Statsim.metrics ~synthetic:syn_m)
    end
  in
  let buf = Buffer.create 512 in
  tspan env "render" (fun () ->
      if json then
        Buffer.add_string buf (Json.to_string (Diag.to_json ?metrics d) ^ "\n")
      else Buffer.add_string buf (Diag.render_text ?metrics d));
  let extra =
    match check_eps with
    | None -> []
    | Some eps -> (
      match Diag.worst d with
      | Some w when w.Diag.max_delta > eps ->
        [
          ("check_ok", Json.Bool false);
          ( "check_message",
            Json.Str
              (Printf.sprintf "diag check FAILED: %s max|dP| = %.5f > %.5f"
                 w.Diag.f_name w.Diag.max_delta eps) );
        ]
      | Some w ->
        [
          ("check_ok", Json.Bool true);
          ( "check_message",
            Json.Str
              (Printf.sprintf
                 "diag check passed: worst %s max|dP| = %.5f <= %.5f"
                 w.Diag.f_name w.Diag.max_delta eps) );
        ]
      | None ->
        [
          ("check_ok", Json.Bool false);
          ("check_message", Json.Str "diag check FAILED: no features compared");
        ])
  in
  result_obj ~extra ~warnings:!warnings buf

(* --- experiment --- *)

let experiment env params =
  let ids = str_list params "ids" in
  let format =
    let name = str_def params "format" "text" in
    match Runner.Report.format_of_string name with
    | Some f -> f
    | None ->
      bad "unknown format %S (one of: %s)" name
        (String.concat " " Runner.Report.format_names)
  in
  let entries =
    match ids with
    | [] -> Experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e
          | None -> bad "unknown experiment %S" id)
        ids
  in
  let ctx = { Runner.Exec.cache = env.cache; jobs = env.jobs } in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      env.check ();
      tspan env ("experiment:" ^ e.id) (fun () ->
          Runner.Report.render format ppf
            (Runner.Exec.run ~label:e.id ctx e.plan)))
    entries;
  Format.pp_print_flush ppf ();
  result_obj ~warnings:[] buf

(* --- dse --- *)

let dse env params =
  let sweep =
    match Json.member "sweep" params with
    | Some (Json.Str path) -> (
      match Dse.Sweep.load_file path with
      | Ok s -> s
      | Error m -> bad "%s" m)
    | Some j -> (
      match Dse.Sweep.of_json j with Ok s -> s | Error m -> bad "%s" m)
    | None -> bad "missing \"sweep\" (inline sweep object or file path)"
  in
  let bench = str_def params "bench" "gcc" in
  let length = int_def params "length" 300_000 in
  let syn = int_def params "synthetic" 40_000 in
  let seed = int_def params "seed" 42 in
  let replicas = int_def params "replicas" 1 in
  let max_points = int_opt params "max_points" in
  let format =
    let name = str_def params "format" "text" in
    match Runner.Report.format_of_string name with
    | Some f -> f
    | None ->
      bad "unknown format %S (one of: %s)" name
        (String.concat " " Runner.Report.format_names)
  in
  let spec = find_spec bench in
  env.check ();
  match
    tspan env "dse.run" (fun () ->
        Dse.Driver.run ~cache:env.cache ~jobs:env.jobs ~replicas ?max_points
          ~length ~target_length:syn ~sweep ~bench:spec ~seed ())
  with
  | Error m -> Error m
  | Ok r ->
    let buf = Buffer.create 1024 in
    tspan env "render" (fun () ->
        let ppf = Format.formatter_of_buffer buf in
        Runner.Report.render format ppf (Dse.Driver.to_report r);
        Format.pp_print_flush ppf ());
    result_obj ~warnings:[] buf

(* --- small ops --- *)

let cache_stats env =
  Ok (Runner.Cache.stats_json (Runner.Cache.stats env.cache))

let ping () =
  Ok (Json.Obj [ ("pong", Json.Bool true); ("output", Json.Str "pong\n") ])

(* A deterministic time-sink for overload/cancellation testing: spins in
   10 ms naps, visiting the cooperative check point on every lap. *)
let sleep env params =
  let ms = min 60_000 (max 0 (int_def params "ms" 100)) in
  let t_end = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
  let rec nap () =
    env.check ();
    let remaining = t_end -. Unix.gettimeofday () in
    if remaining > 0.0 then begin
      (try Unix.sleepf (Float.min 0.01 remaining)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      nap ()
    end
  in
  nap ();
  Ok (Json.Obj [ ("slept_ms", Json.Num (float_of_int ms)) ])

(* Live observability reads: the process registry and the serve plane.
   Both are plain ops so a remote `statsim client` (or a Prometheus
   scraper behind a tiny shim) can read a running daemon without
   restarting it; in one-shot CLI mode they report this process. *)
let telemetry_op () =
  let snap = Telemetry.snapshot () in
  Ok
    (Json.Obj
       [
         ("output", Json.Str (Telemetry.render_json snap));
         ("telemetry", Telemetry.json_of_snapshot snap);
       ])

let metrics_op params =
  match str_def params "format" "json" with
  | "json" ->
    let m = Obs.metrics_json () in
    Ok
      (Json.Obj
         [ ("output", Json.Str (Json.to_string m ^ "\n")); ("metrics", m) ])
  | "prometheus" ->
    Ok (Json.Obj [ ("output", Json.Str (Obs.prometheus ())) ])
  | f -> bad "unknown format %S (one of: json prometheus)" f

let dispatch_inner env ~op params =
  try
    match op with
    | "ping" -> ping ()
    | "cache-stats" -> cache_stats env
    | "simulate" -> simulate env ~force_replicas:false params
    | "replicate" -> simulate env ~force_replicas:true params
    | "estimate" -> estimate env params
    | "diag" -> diag env params
    | "experiment" -> experiment env params
    | "dse" -> dse env params
    | "sleep" -> sleep env params
    | "telemetry" -> telemetry_op ()
    | "metrics" -> metrics_op params
    | op ->
      Error
        (Printf.sprintf "unknown op %S (one of: %s)" op
           (String.concat " " op_names))
  with Bad_param m -> Error m

let dispatch env ~op params =
  (* Resolve the request's trace: the daemon creates one at frame decode
     (and seeds it into [env]); a one-shot caller opts in with a
     `"trace": true` param. Untraced requests take the [None] branch of
     every [tspan] — and their replies carry no extra field, keeping
     server output byte-identical to the CLI. *)
  let trace =
    match env.trace with
    | Some _ as t -> t
    | None -> (
      match Json.member "trace" params with
      | Some (Json.Bool true) -> Some (Telemetry.Trace.create ~id:op ())
      | _ -> None)
  in
  let env =
    match trace with
    | None -> env
    | Some tr ->
      let base_check = env.check in
      {
        env with
        trace;
        (* every cooperative checkpoint visit — one per replica inside
           Synth.Replicate's ?check boundary hook — ticks a mark *)
        check =
          (fun () ->
            Telemetry.Trace.mark tr "check";
            base_check ());
      }
  in
  let r = dispatch_inner env ~op params in
  match trace with
  | None -> r
  | Some tr -> (
    Telemetry.Trace.finish tr;
    match r with
    | Ok (Json.Obj fields) ->
      Ok (Json.Obj (fields @ [ ("trace", Telemetry.Trace.to_json tr) ]))
    | r -> r)

let output r =
  match Json.member "output" r with Some (Json.Str s) -> s | _ -> ""

let warnings r =
  match Json.member "warnings" r with
  | Some (Json.Arr ws) ->
    List.filter_map (function Json.Str s -> Some s | _ -> None) ws
  | _ -> []

(** The request dispatcher: every server op, executable in-process.

    Each op renders its human-readable report into the reply's
    ["output"] field with exactly the format strings the one-shot CLI
    uses — the CLI subcommands call {!dispatch} themselves and print
    ["output"] verbatim, so a server reply is byte-identical to the
    one-shot CLI's stdout by construction, not by parallel maintenance
    of two code paths.

    All heavy artifacts flow through the {!env}'s shared
    {!Runner.Cache}: SFG profiles, compiled {!Kernel.Plan}s and EDS
    references are single-flight memoized, so N concurrent [simulate]
    requests against a cold cache still collect one profile and compile
    one plan ([profile_computes = 1], [plan_computes = 1]). *)

exception Cancelled
(** Raised by an {!env}'s [check] when the client vanished. *)

exception Deadline_exceeded
(** Raised by an {!env}'s [check] when the request's deadline passed. *)

type env = {
  cache : Runner.Cache.t;  (** process-wide hot cache, shared by all *)
  jobs : int;  (** Domain fan-out inside one request *)
  check : unit -> unit;
      (** cooperative cancellation point: called between pipeline
          stages and at every replica boundary (threaded into
          {!Synth.Replicate.run}); raise to abort the request *)
  trace : Telemetry.Trace.t option;
      (** request-scoped span tree, created by the daemon at frame
          decode (or by {!dispatch} itself for a ["trace": true]
          param); [None] = untraced, and every stage span is a no-op *)
}

val default_env :
  ?jobs:int -> ?cache_dir:string -> ?check:(unit -> unit) -> unit -> env
(** Like {!Runner.Exec.create_ctx}: [jobs] defaults to [REPRO_JOBS],
    [cache_dir] to [REPRO_CACHE_DIR] (when set either way, the cache is
    backed by the persistent store). [check] defaults to a no-op (the
    CLI's one-shot environment). *)

val op_names : string list
(** ["ping"; "cache-stats"; "simulate"; "replicate"; "estimate";
    "diag"; "experiment"; "dse"; "sleep"; "telemetry"; "metrics"].

    [simulate]/[replicate] accept stratified-replication params
    ([stratify], [control_variate], [strata], [pilot]) that route
    replication-mode requests through {!Synth.Stratify}; [estimate] is
    the zero-simulation {!Analytical.Steady_state} instant answer
    (structured reply in its ["estimate"] field, cached through
    {!Runner.Cache.estimate}). *)

val dispatch :
  env -> op:string -> Telemetry.Json.t -> (Telemetry.Json.t, string) result
(** Run one op. [Ok] carries the result object — ["output"] holds the
    CLI-identical report text; ops may add structured fields
    (["warnings"], diag's ["check_ok"]/["check_message"],
    [cache-stats]' counters). [Error] is a client mistake (unknown op,
    unknown workload, bad params) to be mapped to a [bad_request]
    reply. Exceptions (including {!Cancelled}/{!Deadline_exceeded}
    raised from [env.check]) propagate to the caller.

    Tracing: when [env.trace] is set, or the request params carry
    [{"trace": true}], per-stage spans (cache lookups,
    profile/plan/reference compute, run, render) are recorded under the
    request's span tree, the cooperative [check] ticks a ["check"] mark
    per visit (one per replica boundary), and the finished tree is
    appended to the [Ok] result object as a ["trace"] field — untraced
    replies carry no extra field and stay byte-identical to the CLI.

    The [telemetry] op returns the live process registry
    ({!Telemetry.render_json} as ["output"], the snapshot object as
    ["telemetry"]); the [metrics] op returns the serve observability
    plane ({!Obs.metrics_json}, or Prometheus text with
    [{"format": "prometheus"}]). *)

val output : Telemetry.Json.t -> string
(** The ["output"] field of a result object, or [""]. *)

val warnings : Telemetry.Json.t -> string list
(** The ["warnings"] field of a result object (stderr lines in the
    one-shot CLI), or []. *)

let magic = "SFRM"
let version = 1
let header_len = 4 + 1 + 4 + 16
let default_max_payload = 8 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  if n > 0x7FFFFFFF then invalid_arg "Frame.encode: payload too large";
  let b = Buffer.create (header_len + n) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Header checks shared by the string and fd readers. Returns the
   declared payload length and the expected digest. *)
let check_header ?(max_payload = default_max_payload) hdr =
  if String.length hdr < header_len then Error "frame shorter than header"
  else if String.sub hdr 0 4 <> magic then Error "bad magic"
  else if Char.code hdr.[4] <> version then
    Error (Printf.sprintf "unsupported frame version %d" (Char.code hdr.[4]))
  else begin
    let n = Int32.to_int (String.get_int32_be hdr 5) in
    if n < 0 || n > max_payload then
      Error (Printf.sprintf "declared payload length %d exceeds limit %d" n
               max_payload)
    else Ok (n, String.sub hdr 9 16)
  end

let decode ?max_payload s =
  match check_header ?max_payload s with
  | Error _ as e -> e
  | Ok (n, digest) ->
    if String.length s <> header_len + n then
      Error
        (Printf.sprintf "frame length %d does not match declared payload %d"
           (String.length s) n)
    else begin
      let payload = String.sub s header_len n in
      if Digest.string payload <> digest then Error "payload digest mismatch"
      else Ok payload
    end

type read_error = Closed | Corrupt of string

(* Fill [len] bytes starting at [pos]; reports how much of this fill
   arrived before a clean EOF so the caller can tell a frame-boundary
   close from mid-frame truncation. *)
let really_read fd buf pos len =
  let rec go off remaining =
    if remaining = 0 then `Done
    else
      match Unix.read fd buf off remaining with
      | 0 -> `Eof (off - pos)
      | k -> go (off + k) (remaining - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
        `Gone
      | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)
  in
  go pos len

let read ?max_payload fd =
  let hdr = Bytes.create header_len in
  match really_read fd hdr 0 header_len with
  | `Eof 0 | `Gone -> Error Closed
  | `Eof _ -> Error (Corrupt "truncated frame header")
  | `Err m -> Error (Corrupt m)
  | `Done -> (
    match check_header ?max_payload (Bytes.to_string hdr) with
    | Error m -> Error (Corrupt m)
    | Ok (n, digest) -> (
      let payload = Bytes.create n in
      match really_read fd payload 0 n with
      | `Eof _ -> Error (Corrupt "truncated frame payload")
      | `Gone -> Error Closed
      | `Err m -> Error (Corrupt m)
      | `Done ->
        let payload = Bytes.unsafe_to_string payload in
        if Digest.string payload <> digest then
          Error (Corrupt "payload digest mismatch")
        else Ok payload))

let write fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

module Json = Telemetry.Json

type request = {
  id : int option;
  op : string;
  deadline_ms : int option;
  params : Json.t;
}

type error_code =
  | Bad_request
  | Overloaded
  | Deadline_exceeded
  | Cancelled
  | Internal

let code_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Cancelled -> "cancelled"
  | Internal -> "internal"

let code_of_name = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "cancelled" -> Some Cancelled
  | "internal" -> Some Internal
  | _ -> None

(* Socket payloads are adversarial: parse under tight limits so a
   hostile document is an error reply, never a stack or heap blowup. *)
let max_depth = 64
let max_string = 1 lsl 20

let request_to_string r =
  let fields = [ ("op", Json.Str r.op) ] in
  let fields =
    match r.id with
    | Some id -> ("id", Json.Num (float_of_int id)) :: fields
    | None -> fields
  in
  let fields =
    fields
    @ (match r.deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Num (float_of_int ms)) ]
      | None -> [])
    @ [ ("params", r.params) ]
  in
  Json.to_string (Json.Obj fields)

let int_member ~what j =
  match j with
  | Json.Num v when Float.is_integer v && Float.abs v < 1e15 ->
    Ok (int_of_float v)
  | _ -> Error (Printf.sprintf "%s must be an integral number" what)

let parse_request s =
  match Json.of_string ~max_depth ~max_string s with
  | Error e -> Error e
  | Ok (Json.Obj _ as doc) -> (
    let ( let* ) = Result.bind in
    let* op =
      match Json.member "op" doc with
      | Some (Json.Str op) -> Ok op
      | Some _ -> Error "\"op\" must be a string"
      | None -> Error "missing \"op\""
    in
    let* id =
      match Json.member "id" doc with
      | None -> Ok None
      | Some j -> Result.map Option.some (int_member ~what:"\"id\"" j)
    in
    let* deadline_ms =
      match Json.member "deadline_ms" doc with
      | None -> Ok None
      | Some j -> (
        match int_member ~what:"\"deadline_ms\"" j with
        | Error _ as e -> e
        | Ok ms when ms < 0 -> Error "\"deadline_ms\" must be >= 0"
        | Ok ms -> Ok (Some ms))
    in
    let params =
      match Json.member "params" doc with
      | Some p -> p
      | None -> Json.Obj []
    in
    Ok { id; op; deadline_ms; params })
  | Ok _ -> Error "request must be a JSON object"

let id_fields = function
  | Some id -> [ ("id", Json.Num (float_of_int id)) ]
  | None -> []

let ok_reply ~id result =
  Json.to_string
    (Json.Obj (id_fields id @ [ ("status", Json.Str "ok"); ("result", result) ]))

let error_reply ~id code msg =
  Json.to_string
    (Json.Obj
       (id_fields id
       @ [
           ("status", Json.Str "error");
           ( "error",
             Json.Obj
               [ ("code", Json.Str (code_name code)); ("message", Json.Str msg) ]
           );
         ]))

type reply = {
  reply_id : int option;
  outcome : (Json.t, error_code * string) result;
}

let parse_reply s =
  match Json.of_string ~max_depth ~max_string s with
  | Error e -> Error e
  | Ok doc -> (
    let reply_id =
      match Json.member "id" doc with
      | Some (Json.Num v) when Float.is_integer v -> Some (int_of_float v)
      | _ -> None
    in
    match Json.member "status" doc with
    | Some (Json.Str "ok") -> (
      match Json.member "result" doc with
      | Some result -> Ok { reply_id; outcome = Ok result }
      | None -> Error "ok reply without \"result\"")
    | Some (Json.Str "error") -> (
      match Json.member "error" doc with
      | Some err ->
        let code =
          match Json.member "code" err with
          | Some (Json.Str c) ->
            Option.value (code_of_name c) ~default:Internal
          | _ -> Internal
        in
        let msg =
          match Json.member "message" err with
          | Some (Json.Str m) -> m
          | _ -> "unknown error"
        in
        Ok { reply_id; outcome = Error (code, msg) }
      | None -> Error "error reply without \"error\"")
    | _ -> Error "reply without a valid \"status\"")

(** The daemon's observability plane: per-op rolling SLO metrics,
    cumulative outcome counters, in-flight/queue gauges, Prometheus
    text exposition, and a structured JSON access log.

    Process-global, like [Telemetry]: one registry behind one atomic
    enable flag. Disabled, every hook ({!record}, {!incr_inflight},
    ...) is a single [Atomic.get] and a branch — the daemon's hot path
    carries the instrumentation permanently without perf cost. Enabled,
    each recorded request lands in per-op 1-minute (6 x 10 s slots) and
    5-minute (10 x 30 s slots) [Telemetry.Window] rings for service
    time and queue wait, plus count-only rings for the deadline-miss
    and shed ratios. *)

type outcome =
  | Ok_reply
  | Err of Protocol.error_code

val outcome_name : outcome -> string
(** ["ok"] or the [Protocol.code_name]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val set_known_ops : string list -> unit
(** Register the server's dispatchable op set (the daemon does this at
    startup from [Ops.op_names]). Op names are client-supplied:
    {!record} folds any op outside this set into a single ["unknown"]
    cell, so a client spamming random names cannot mint unbounded
    metric cells. With no registered set, every op is unknown. Survives
    {!reset}. *)

val record :
  ?now:int ->
  op:string ->
  outcome:outcome ->
  queue_ns:int ->
  service_ns:int ->
  unit ->
  unit
(** Account one finished (or shed) request. Sheds ([Err Overloaded])
    count toward request totals and the shed ratio but contribute no
    service/queue sample — they never reached a worker. Ops outside the
    {!set_known_ops} set land in the ["unknown"] cell. [?now]
    (monotonic ns) is for deterministic tests. *)

val incr_inflight : unit -> unit
val decr_inflight : unit -> unit
val set_queue_depth : int -> unit

val reset : unit -> unit
(** Drop all per-op cells and zero the gauges (tests; a fresh daemon in
    a long-lived process). *)

val metrics_json : ?now:int -> unit -> Telemetry.Json.t
(** [{"enabled", "inflight", "queue_depth", "ops": [{"op", "requests",
    "outcomes": {code: count}, "windows": {"1m"|"5m": {"requests",
    "service"|"queue": {count,sum_ns,mean_ns,p50_ns,p95_ns,p99_ns},
    "deadline_miss_ratio", "shed_ratio"}}}]}], ops sorted by name. *)

val prometheus : ?now:int -> unit -> string
(** Prometheus text exposition: the full [Telemetry.render_prometheus]
    registry dump followed by [statsim_op_requests_total{op,outcome}],
    [statsim_op_service_ns] / [statsim_op_queue_ns]
    {op,window,quantile} gauges, [statsim_op_deadline_miss_ratio] /
    [statsim_op_shed_ratio] {op,window} gauges, and the
    [statsim_inflight] / [statsim_queue_depth] gauges. *)

(** Structured JSON access log: one line per (sampled) request, written
    buffered and flushed on daemon drain. *)
module Access_log : sig
  type t

  val open_ : path:string -> sample:int -> t
  (** Append-mode open; [sample] keeps every [sample]-th request
      (min 1 = keep all). *)

  val record :
    t ->
    id:int option ->
    op:string ->
    outcome:outcome ->
    queue_ns:int option ->
    service_ns:int option ->
    bytes:int ->
    traced:bool ->
    unit
  (** One JSON object per line: [ts] (unix seconds), [id], [op],
      [outcome], [queue_ns], [service_ns], [bytes] (reply payload
      size), [traced] (request carried a span tree). [queue_ns] /
      [service_ns] are [None] — logged as JSON null — when the request
      was never timed: observability disabled and the request untraced,
      or shed at admission before any clock read. *)

  val flush : t -> unit
  val close : t -> unit
end

(* The daemon's observability plane: per-op rolling SLO windows,
   cumulative outcome counters, in-flight/queue gauges, a structured
   JSON access log, and the `metrics` op's two renders (JSON and
   Prometheus text).

   Like Telemetry, this is a process-global registry behind one atomic
   enable flag: with observability disabled every hook in the daemon's
   hot path is a single [Atomic.get] and a branch — no clock reads, no
   allocation — so the instrumentation can live in the request path
   permanently without moving the gated serve bench numbers. *)

module Json = Telemetry.Json

type outcome =
  | Ok_reply
  | Err of Protocol.error_code

let outcome_name = function
  | Ok_reply -> "ok"
  | Err c -> Protocol.code_name c

let all_outcomes =
  [
    Ok_reply;
    Err Protocol.Bad_request;
    Err Protocol.Overloaded;
    Err Protocol.Deadline_exceeded;
    Err Protocol.Cancelled;
    Err Protocol.Internal;
  ]

let n_outcomes = List.length all_outcomes

let outcome_index = function
  | Ok_reply -> 0
  | Err Protocol.Bad_request -> 1
  | Err Protocol.Overloaded -> 2
  | Err Protocol.Deadline_exceeded -> 3
  | Err Protocol.Cancelled -> 4
  | Err Protocol.Internal -> 5

(* --- enable flag --- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- windows --- *)

let ns_per_s = 1_000_000_000

type win_pair = { w1m : Telemetry.Window.t; w5m : Telemetry.Window.t }

let make_pair ?sketch () =
  {
    w1m = Telemetry.Window.create ?sketch ~window_ns:(60 * ns_per_s) ~slots:6 ();
    w5m =
      Telemetry.Window.create ?sketch ~window_ns:(300 * ns_per_s) ~slots:10 ();
  }

type cell = {
  op : string;
  outcomes : int Atomic.t array;  (* cumulative, indexed by outcome_index *)
  service : win_pair;  (* service-time sketch windows *)
  queue : win_pair;  (* queue-wait sketch windows *)
  total_w : win_pair;  (* count-only: every recorded request *)
  deadline_w : win_pair;  (* count-only: deadline_exceeded outcomes *)
  shed_w : win_pair;  (* count-only: overloaded outcomes *)
}

let registry_mutex = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 16
let inflight = Atomic.make 0
let queue_depth = Atomic.make 0

(* Op names are client-supplied strings: without an allowlist, a remote
   client spamming random names would mint an unbounded number of cells
   (each holding ~22k window slots) and explode metric cardinality.
   The daemon registers the dispatchable op set at startup; anything
   else folds into one "unknown" bucket. The allowlist survives
   [reset] — it describes the server, not the traffic. *)
let unknown_op = "unknown"
let known_ops : (string, unit) Hashtbl.t = Hashtbl.create 16

let set_known_ops ops =
  Mutex.lock registry_mutex;
  Hashtbl.reset known_ops;
  List.iter (fun op -> Hashtbl.replace known_ops op ()) ops;
  Mutex.unlock registry_mutex

let cell op =
  Mutex.lock registry_mutex;
  let op = if Hashtbl.mem known_ops op then op else unknown_op in
  let c =
    match Hashtbl.find_opt cells op with
    | Some c -> c
    | None ->
      let c =
        {
          op;
          outcomes = Array.init n_outcomes (fun _ -> Atomic.make 0);
          service = make_pair ();
          queue = make_pair ();
          total_w = make_pair ~sketch:false ();
          deadline_w = make_pair ~sketch:false ();
          shed_w = make_pair ~sketch:false ();
        }
      in
      Hashtbl.add cells op c;
      c
  in
  Mutex.unlock registry_mutex;
  c

let incr_inflight () = if enabled () then ignore (Atomic.fetch_and_add inflight 1)
let decr_inflight () =
  if enabled () then ignore (Atomic.fetch_and_add inflight (-1))

let set_queue_depth n = if enabled () then Atomic.set queue_depth n

let record ?now ~op ~(outcome : outcome) ~queue_ns ~service_ns () =
  if enabled () then begin
    let c = cell op in
    ignore (Atomic.fetch_and_add c.outcomes.(outcome_index outcome) 1);
    let obs w v =
      Telemetry.Window.observe ?now w.w1m v;
      Telemetry.Window.observe ?now w.w5m v
    in
    obs c.total_w 0;
    (match outcome with
    | Err Protocol.Deadline_exceeded -> obs c.deadline_w 0
    | Err Protocol.Overloaded -> obs c.shed_w 0
    | _ -> ());
    (* sheds never reach a worker: no service/queue sample for them *)
    (match outcome with
    | Err Protocol.Overloaded -> ()
    | _ ->
      obs c.queue queue_ns;
      obs c.service service_ns)
  end

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset cells;
  Mutex.unlock registry_mutex;
  Atomic.set inflight 0;
  Atomic.set queue_depth 0

(* --- JSON exposition --- *)

let sorted_cells () =
  Mutex.lock registry_mutex;
  let l = Hashtbl.fold (fun _ c acc -> c :: acc) cells [] in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> String.compare a.op b.op) l

let num i = Json.Num (float_of_int i)

let stat_json (s : Telemetry.Window.stat) =
  Json.Obj
    [
      ("count", num s.w_count);
      ("sum_ns", num s.w_sum);
      ("mean_ns", Json.Num s.w_mean);
      ("p50_ns", num s.w_p50);
      ("p95_ns", num s.w_p95);
      ("p99_ns", num s.w_p99);
    ]

let window_json ?now c which =
  let pick w = match which with `W1m -> w.w1m | `W5m -> w.w5m in
  let total = Telemetry.Window.count ?now (pick c.total_w) in
  let ratio n = if total = 0 then 0.0 else float_of_int n /. float_of_int total in
  Json.Obj
    [
      ("requests", num total);
      ("service", stat_json (Telemetry.Window.query ?now (pick c.service)));
      ("queue", stat_json (Telemetry.Window.query ?now (pick c.queue)));
      ( "deadline_miss_ratio",
        Json.Num (ratio (Telemetry.Window.count ?now (pick c.deadline_w))) );
      ( "shed_ratio",
        Json.Num (ratio (Telemetry.Window.count ?now (pick c.shed_w))) );
    ]

let metrics_json ?now () =
  let ops =
    List.map
      (fun c ->
        let requests =
          Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.outcomes
        in
        Json.Obj
          [
            ("op", Json.Str c.op);
            ("requests", num requests);
            ( "outcomes",
              Json.Obj
                (List.map
                   (fun o ->
                     (outcome_name o, num (Atomic.get c.outcomes.(outcome_index o))))
                   all_outcomes) );
            ( "windows",
              Json.Obj
                [
                  ("1m", window_json ?now c `W1m);
                  ("5m", window_json ?now c `W5m);
                ] );
          ])
      (sorted_cells ())
  in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled ()));
      ("inflight", num (Atomic.get inflight));
      ("queue_depth", num (Atomic.get queue_depth));
      ("ops", Json.Arr ops);
    ]

(* --- Prometheus exposition --- *)

let prometheus ?now () =
  let buf = Buffer.create 4096 in
  (* registry instruments first (statsim_counter_total, statsim_span_*,
     statsim_hist_*, ...) *)
  Buffer.add_string buf (Telemetry.render_prometheus (Telemetry.snapshot ()));
  let line name labels v =
    Buffer.add_string buf name;
    (match labels with
    | [] -> ()
    | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, lv) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "%s=\"%s\"" k (Telemetry.prom_escape lv))
        labels;
      Buffer.add_char buf '}');
    Printf.bprintf buf " %s\n" (Telemetry.prom_num v)
  in
  let family name typ = Printf.bprintf buf "# TYPE %s %s\n" name typ in
  let cs = sorted_cells () in
  family "statsim_op_requests_total" "counter";
  List.iter
    (fun c ->
      List.iter
        (fun o ->
          line "statsim_op_requests_total"
            [ ("op", c.op); ("outcome", outcome_name o) ]
            (float_of_int (Atomic.get c.outcomes.(outcome_index o))))
        all_outcomes)
    cs;
  let windowed name typ pick =
    family name typ;
    List.iter
      (fun c ->
        List.iter
          (fun (wname, which) -> pick c wname which)
          [ ("1m", `W1m); ("5m", `W5m) ])
      cs
  in
  let quantiles name sel =
    windowed name "gauge" (fun c wname which ->
        let w = sel c in
        let w = match which with `W1m -> w.w1m | `W5m -> w.w5m in
        let s = Telemetry.Window.query ?now w in
        List.iter
          (fun (q, v) ->
            line name
              [ ("op", c.op); ("window", wname); ("quantile", q) ]
              (float_of_int v))
          [ ("0.5", s.w_p50); ("0.95", s.w_p95); ("0.99", s.w_p99) ])
  in
  quantiles "statsim_op_service_ns" (fun c -> c.service);
  quantiles "statsim_op_queue_ns" (fun c -> c.queue);
  let ratios name sel =
    windowed name "gauge" (fun c wname which ->
        let pick w = match which with `W1m -> w.w1m | `W5m -> w.w5m in
        let total = Telemetry.Window.count ?now (pick c.total_w) in
        let n = Telemetry.Window.count ?now (pick (sel c)) in
        line name
          [ ("op", c.op); ("window", wname) ]
          (if total = 0 then 0.0 else float_of_int n /. float_of_int total))
  in
  ratios "statsim_op_deadline_miss_ratio" (fun c -> c.deadline_w);
  ratios "statsim_op_shed_ratio" (fun c -> c.shed_w);
  family "statsim_inflight" "gauge";
  line "statsim_inflight" [] (float_of_int (Atomic.get inflight));
  family "statsim_queue_depth" "gauge";
  line "statsim_queue_depth" [] (float_of_int (Atomic.get queue_depth));
  Buffer.contents buf

(* --- structured access log --- *)

module Access_log = struct
  (* One JSON line per request (subject to 1-in-[sample] sampling),
     buffered on an out_channel guarded by a mutex; [flush] is called
     from the daemon's SIGTERM drain so a killed service still leaves a
     well-formed log. *)

  type t = {
    oc : out_channel;
    mutex : Mutex.t;
    sample : int;
    seq : int Atomic.t;
  }

  let open_ ~path ~sample =
    {
      oc = open_out_gen [ Open_append; Open_creat ] 0o644 path;
      mutex = Mutex.create ();
      sample = max 1 sample;
      seq = Atomic.make 0;
    }

  let record t ~id ~op ~outcome ~queue_ns ~service_ns ~bytes ~traced =
    let n = Atomic.fetch_and_add t.seq 1 in
    if n mod t.sample = 0 then begin
      (* timings are [None] when nothing was measured (obs disabled and
         the request untraced, or shed at admission): emit null rather
         than a 0 that reads as a real zero-latency measurement *)
      let opt_ns = function Some v -> num v | None -> Json.Null in
      let line =
        Json.to_string
          (Json.Obj
             [
               ("ts", Json.Num (Unix.gettimeofday ()));
               ("id", match id with Some i -> num i | None -> Json.Null);
               ("op", Json.Str op);
               ("outcome", Json.Str (outcome_name outcome));
               ("queue_ns", opt_ns queue_ns);
               ("service_ns", opt_ns service_ns);
               ("bytes", num bytes);
               ("traced", Json.Bool traced);
             ])
      in
      Mutex.lock t.mutex;
      output_string t.oc line;
      output_char t.oc '\n';
      Mutex.unlock t.mutex
    end

  let flush t =
    Mutex.lock t.mutex;
    flush t.oc;
    Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    (try close_out t.oc with Sys_error _ -> ());
    Mutex.unlock t.mutex
end

(** The perf-gate evaluation core: compare a fresh [BENCH_summary.json]
    against the checked-in [bench/baseline.json].

    Extracted from the [perf_gate] executable so the verdict logic is
    unit-testable; the executable keeps only argument parsing and
    printing. Two kinds of comparison:

    - {!evaluate} checks one named metric. Timings regress only when
      slower; counts drift in either direction. Each check carries an
      absolute slack so near-zero timings at tiny [REPRO_SCALE] cannot
      trip the relative threshold.
    - {!missing_sections} guards whole summary sections: a section the
      baseline has numbers for but the fresh summary left empty (the
      bench selection stopped running it, or the harness stopped
      emitting it) is a {e named failure}, never a silent skip. A
      section absent from the baseline is informational — new summary
      sections land before the baseline is regenerated. *)

type check = {
  label : string;
  path : string list;  (** JSON path into the summary document *)
  both_directions : bool;
      (** counts fail on drift either way; timings only when slower *)
  abs_slack : float;
}

type verdict =
  | Pass
  | Regressed
  | Missing  (** baseline has the metric, the fresh summary does not *)
  | New  (** no baseline value yet: informational *)

val failed : verdict -> bool
(** [Regressed] and [Missing] fail the gate. *)

val num_field : Telemetry.Json.t -> string list -> float option
(** Numeric value at a JSON path, for informational (ungated) lines. *)

val default_checks : check list
(** Every gated metric: per-stage seconds, memo-cache and store
    counters, streaming/kernel timings, the DSE driver's seconds and
    profile/plan compute counts, and the replication bench's
    deterministic replicas-to-target-CI counts. *)

val evaluate :
  threshold:float ->
  baseline:Telemetry.Json.t ->
  current:Telemetry.Json.t ->
  check ->
  check * float * float * verdict
(** [(check, baseline_value, current_value, verdict)]; absent values
    are [nan]. A value regresses when it exceeds both the relative
    threshold and the check's absolute slack. *)

val missing_sections :
  baseline:Telemetry.Json.t -> current:Telemetry.Json.t -> string list
(** Top-level baseline sections that are non-empty objects but are
    absent — or an empty object — in the current summary, in baseline
    document order. Each name is a gate failure. *)

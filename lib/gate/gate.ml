module J = Telemetry.Json

type check = {
  label : string;
  path : string list;
  both_directions : bool;
  abs_slack : float;
}

type verdict = Pass | Regressed | Missing | New

let failed = function
  | Regressed | Missing -> true
  | Pass | New -> false

let num_field json path =
  let rec go json = function
    | [] -> J.to_num json
    | k :: rest -> (
      match J.member k json with Some v -> go v rest | None -> None)
  in
  go json path

let stage_names =
  [ "profile"; "generate"; "simulate_synthetic"; "simulate_eds" ]

let default_checks =
  List.map
    (fun stage ->
      {
        label = "stage." ^ stage ^ ".seconds";
        path = [ "stages"; stage; "seconds" ];
        both_directions = false;
        abs_slack = 0.05;
      })
    stage_names
  @ List.map
      (fun field ->
        {
          label = "cache." ^ field;
          path = [ "cache"; field ];
          both_directions = true;
          abs_slack = 1.0;
        })
      [
        "profile_hits";
        "profile_misses";
        "reference_hits";
        "reference_misses";
        "plan_hits";
        "plan_misses";
      ]
  (* the CI bench run has no REPRO_CACHE_DIR, so these must stay 0 —
     a nonzero value means the gate run accidentally used a store *)
  @ List.map
      (fun field ->
        {
          label = "store." ^ field;
          path = [ "store"; field ];
          both_directions = true;
          abs_slack = 0.5;
        })
      [ "hits"; "misses"; "bytes_written"; "quarantined" ]
  (* streamed-vs-materialized bench: gate the timings like any stage
     (informational until the baseline is regenerated with them) *)
  @ List.map
      (fun path_kind ->
        {
          label = "streaming." ^ path_kind ^ ".seconds";
          path = [ "streaming"; path_kind; "seconds" ];
          both_directions = false;
          abs_slack = 0.05;
        })
      [ "streamed"; "materialized" ]
  (* compiled-kernel bench: plan compilation and both engines' wall
     times, gated one-directionally like every timing *)
  @ List.map
      (fun (label, path) ->
        { label; path; both_directions = false; abs_slack = 0.05 })
      [
        ("kernel.compile_seconds", [ "kernel"; "compile_seconds" ]);
        ( "kernel.generate.interpreted.seconds",
          [ "kernel"; "generate"; "interpreted"; "seconds" ] );
        ( "kernel.generate.compiled.seconds",
          [ "kernel"; "generate"; "compiled"; "seconds" ] );
        ( "kernel.pipeline.dense.seconds",
          [ "kernel"; "pipeline"; "dense"; "seconds" ] );
        ( "kernel.pipeline.event_driven.seconds",
          [ "kernel"; "pipeline"; "event_driven"; "seconds" ] );
      ]
  (* design-space exploration driver: sweep wall time is gated like a
     stage; the profile/plan compute counts are the driver's whole
     contract (one each per sweep) so any drift fails *)
  @ [
      {
        label = "dse.seconds";
        path = [ "dse"; "seconds" ];
        both_directions = false;
        abs_slack = 0.05;
      };
      {
        label = "dse.profile_collections";
        path = [ "dse"; "profile_collections" ];
        both_directions = true;
        abs_slack = 0.5;
      };
      {
        label = "dse.plan_compilations";
        path = [ "dse"; "plan_compilations" ];
        both_directions = true;
        abs_slack = 0.5;
      };
    ]
  (* the serve daemon: time-to-first-response cold (profile + plan +
     reference all computed) and warm (pure cache hits), plus the warm
     round-trip batch — regressions only, timings are scale-noisy *)
  @ [
      {
        label = "serve.cold_first_response_seconds";
        path = [ "serve"; "cold_first_response_seconds" ];
        both_directions = false;
        abs_slack = 0.25;
      };
      {
        label = "serve.warm_first_response_seconds";
        path = [ "serve"; "warm_first_response_seconds" ];
        both_directions = false;
        abs_slack = 0.05;
      };
      {
        label = "serve.warm_seconds";
        path = [ "serve"; "warm_seconds" ];
        both_directions = false;
        abs_slack = 0.1;
      };
    ]
  (* variance-aware replication: the replicas-to-target-CI counts are
     fully deterministic (fixed sizes, fixed master seed, jobs-invariant
     estimator), so any drift is a behavioral change in the stratified
     engine and fails in either direction; the wall times are gated like
     any other timing *)
  @ List.map
      (fun kind ->
        {
          label = "replication." ^ kind ^ ".replicas";
          path = [ "replication"; kind; "replicas" ];
          both_directions = true;
          abs_slack = 0.5;
        })
      [ "blind"; "stratified"; "stratified_cv" ]
  @ List.map
      (fun kind ->
        {
          label = "replication." ^ kind ^ ".seconds";
          path = [ "replication"; kind; "seconds" ];
          both_directions = false;
          abs_slack = 0.5;
        })
      [ "blind"; "stratified_cv" ]

let evaluate ~threshold ~baseline ~current check =
  match (num_field baseline check.path, num_field current check.path) with
  (* a metric the baseline predates (new summary sections land before
     the baseline is regenerated) is informational, not a failure; a
     metric missing from the *current* run still fails — the harness
     stopped producing it *)
  | None, _ -> (check, nan, nan, New)
  | Some b, None -> (check, b, nan, Missing)
  | Some b, Some c ->
    let delta = c -. b in
    let over_rel =
      if check.both_directions then Float.abs delta > threshold *. Float.abs b
      else delta > threshold *. Float.abs b
    in
    let over_abs = Float.abs delta > check.abs_slack in
    (check, b, c, if over_rel && over_abs then Regressed else Pass)

(* A baseline section with numbers that the fresh summary emits as {}
   (or not at all) would previously pass any per-metric check whose
   path the static list did not know about — e.g. the dynamically-keyed
   "histograms" section. Guard the sections themselves. *)
let missing_sections ~baseline ~current =
  match baseline with
  | J.Obj kvs ->
    List.filter_map
      (fun (name, v) ->
        match v with
        | J.Obj (_ :: _) -> (
          match J.member name current with
          | Some (J.Obj (_ :: _)) -> None
          | Some (J.Obj []) | None -> Some name
          | Some _ -> Some name)
        | _ -> None)
      kvs
  | _ -> []

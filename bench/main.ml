(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) and runs bechamel micro-benchmarks of the
   simulator components.

   Usage:
     dune exec bench/main.exe              # all experiments + micro suite
     dune exec bench/main.exe fig6 table4  # a subset
     dune exec bench/main.exe micro        # component throughputs only
     REPRO_SCALE=4 dune exec bench/main.exe    # 4x longer streams
     REPRO_JOBS=4 dune exec bench/main.exe     # 4 worker domains
     REPRO_BENCHES=gcc,twolf dune exec bench/main.exe fig6

   Experiment timings and memo-cache statistics are also written to
   BENCH_summary.json (machine-readable; gitignored). *)

let ppf = Format.std_formatter

(* --- bechamel micro-benchmarks: one Test.make per component --- *)

let micro_tests () =
  let open Bechamel in
  let cfg = Config.Machine.baseline in
  let spec = Workload.Suite.find "gcc" in
  (* pre-built inputs so the staged functions measure steady-state work *)
  let cache = Cache.Sa_cache.create cfg.dcache in
  let pred = Branch.Predictor.create cfg.bpred in
  let branch : Isa.Dyn_inst.branch =
    { kind = Cond; taken = true; target = 0x400100; next_pc = 0x400004 }
  in
  let prog = Workload.Suite.program spec in
  let profile_input () = Workload.Suite.stream spec ~length:20_000 in
  let profile = Statsim.profile cfg (profile_input ()) in
  let trace = Statsim.synthesize ~target_length:5_000 profile ~seed:7 in
  let addr = ref 0 in
  [
    Test.make ~name:"cache_access"
      (Staged.stage (fun () ->
           addr := (!addr + 4096) land 0xFFFFF;
           ignore (Cache.Sa_cache.access cache !addr)));
    Test.make ~name:"bpred_lookup_update"
      (Staged.stage (fun () ->
           ignore (Branch.Predictor.lookup pred ~pc:0x400000 ~branch);
           Branch.Predictor.update pred ~pc:0x400000 ~branch));
    Test.make ~name:"workload_interp_1k"
      (Staged.stage (fun () ->
           let gen = Workload.Interp.generator prog ~seed:1 ~length:1_000 in
           let rec drain () = match gen () with Some _ -> drain () | None -> () in
           drain ()));
    Test.make ~name:"eds_pipeline_5k"
      (Staged.stage (fun () ->
           ignore
             (Uarch.Eds.run cfg (Workload.Suite.stream spec ~length:5_000))));
    Test.make ~name:"profile_5k"
      (Staged.stage (fun () ->
           ignore
             (Statsim.profile cfg (Workload.Suite.stream spec ~length:5_000))));
    Test.make ~name:"synthesize_5k"
      (Staged.stage (fun () ->
           ignore (Statsim.synthesize ~target_length:5_000 profile ~seed:11)));
    Test.make ~name:"synth_pipeline_5k"
      (Staged.stage (fun () -> ignore (Synth.Run.run cfg trace)));
  ]

let run_micro () =
  let open Bechamel in
  Format.fprintf ppf "== micro-benchmarks (bechamel, ns/run) ==@.";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg_b = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg_b [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            Format.fprintf ppf "  %-24s %12.0f ns/run@." name est
          | Some [] | None ->
            Format.fprintf ppf "  %-24s (no estimate)@." name)
        analyzed)
    (micro_tests ());
  Format.fprintf ppf "@."

(* --- driver --- *)

(* one ctx for the whole invocation: the memo cache shares EDS
   references and profiles across every experiment that runs *)
let ctx = lazy (Runner.Exec.create_ctx ())

(* (id, seconds) in run order, for the machine-readable summary *)
let timings : (string * float) list ref = ref []

let usage () =
  Format.fprintf ppf "experiments:@.";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      Format.fprintf ppf "  %-8s %s@." e.id e.description)
    Experiments.Registry.all;
  Format.fprintf ppf "  %-8s %s@." "micro" "bechamel component micro-benchmarks"

let run_one id =
  match Experiments.Registry.find id with
  | Some e ->
    let ctx = Lazy.force ctx in
    let t0 = Unix.gettimeofday () in
    Runner.Report.to_text ppf (Runner.Exec.run ctx e.plan);
    let dt = Unix.gettimeofday () -. t0 in
    timings := (id, dt) :: !timings;
    Format.fprintf ppf "[%s done in %.1fs]@.@." id dt
  | None ->
    if id = "micro" then run_micro ()
    else begin
      Format.fprintf ppf "unknown experiment %S@." id;
      usage ();
      exit 2
    end

let summary_file = "BENCH_summary.json"

let write_summary () =
  match List.rev !timings with
  | [] -> ()
  | ts ->
    let ctx = Lazy.force ctx in
    let st = Runner.Cache.stats ctx.cache in
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "{\"jobs\":%d,\"scale\":%g,\"experiments\":[" ctx.jobs
         Experiments.Exp_common.scale);
    List.iteri
      (fun i (id, dt) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "{\"id\":%S,\"seconds\":%.3f}" id dt))
      ts;
    Buffer.add_string buf
      (Printf.sprintf
         "],\"total_seconds\":%.3f,\"cache\":{\"profile_hits\":%d,\"profile_misses\":%d,\"reference_hits\":%d,\"reference_misses\":%d}}\n"
         (List.fold_left (fun a (_, dt) -> a +. dt) 0.0 ts)
         st.profile_hits st.profile_misses st.reference_hits
         st.reference_misses);
    let oc = open_out summary_file in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Format.fprintf ppf "[timing summary written to %s]@." summary_file

let () =
  (match Array.to_list Sys.argv with
  | _ :: [] ->
    List.iter
      (fun (e : Experiments.Registry.entry) -> run_one e.id)
      Experiments.Registry.all;
    run_micro ()
  | _ :: [ ("-h" | "--help" | "help") ] -> usage ()
  | _ :: ids -> List.iter run_one ids
  | [] -> assert false);
  write_summary ()

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) and runs bechamel micro-benchmarks of the
   simulator components.

   Usage:
     dune exec bench/main.exe              # all experiments + micro suite
     dune exec bench/main.exe fig6 table4  # a subset
     dune exec bench/main.exe micro        # component throughputs only
     REPRO_SCALE=4 dune exec bench/main.exe    # 4x longer streams
     REPRO_JOBS=4 dune exec bench/main.exe     # 4 worker domains
     REPRO_BENCHES=gcc,twolf dune exec bench/main.exe fig6

   Experiment timings, per-stage telemetry breakdowns (profile /
   generate / simulate seconds and instructions-per-second), memo-cache
   statistics and persistent-store counters (hits / misses / bytes
   written / quarantined; zero unless REPRO_CACHE_DIR is set, and the
   CI gate pins them to zero) are written to BENCH_summary.json
   (machine-readable; gitignored). `--out PATH` or REPRO_BENCH_OUT
   chooses a different path; `bench/perf_gate.exe` compares the file
   against the checked-in bench/baseline.json in CI. *)

let ppf = Format.std_formatter

(* --- bechamel micro-benchmarks: one Test.make per component --- *)

let micro_tests () =
  let open Bechamel in
  let cfg = Config.Machine.baseline in
  let spec = Workload.Suite.find "gcc" in
  (* pre-built inputs so the staged functions measure steady-state work *)
  let cache = Cache.Sa_cache.create cfg.dcache in
  let pred = Branch.Predictor.create cfg.bpred in
  let branch : Isa.Dyn_inst.branch =
    { kind = Cond; taken = true; target = 0x400100; next_pc = 0x400004 }
  in
  let prog = Workload.Suite.program spec in
  let profile_input () = Workload.Suite.stream spec ~length:20_000 in
  let profile = Statsim.profile cfg (profile_input ()) in
  let trace = Statsim.synthesize ~target_length:5_000 profile ~seed:7 in
  let addr = ref 0 in
  [
    Test.make ~name:"cache_access"
      (Staged.stage (fun () ->
           addr := (!addr + 4096) land 0xFFFFF;
           ignore (Cache.Sa_cache.access cache !addr)));
    Test.make ~name:"bpred_lookup_update"
      (Staged.stage (fun () ->
           ignore (Branch.Predictor.lookup pred ~pc:0x400000 ~branch);
           Branch.Predictor.update pred ~pc:0x400000 ~branch));
    Test.make ~name:"workload_interp_1k"
      (Staged.stage (fun () ->
           let gen = Workload.Interp.generator prog ~seed:1 ~length:1_000 in
           let rec drain () = match gen () with Some _ -> drain () | None -> () in
           drain ()));
    Test.make ~name:"eds_pipeline_5k"
      (Staged.stage (fun () ->
           ignore
             (Uarch.Eds.run cfg (Workload.Suite.stream spec ~length:5_000))));
    Test.make ~name:"profile_5k"
      (Staged.stage (fun () ->
           ignore
             (Statsim.profile cfg (Workload.Suite.stream spec ~length:5_000))));
    Test.make ~name:"synthesize_5k"
      (Staged.stage (fun () ->
           ignore (Statsim.synthesize ~target_length:5_000 profile ~seed:11)));
    Test.make ~name:"synth_pipeline_5k"
      (Staged.stage (fun () -> ignore (Synth.Run.run cfg trace)));
  ]

let run_micro () =
  let open Bechamel in
  Format.fprintf ppf "== micro-benchmarks (bechamel, ns/run) ==@.";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg_b = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg_b [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            Format.fprintf ppf "  %-24s %12.0f ns/run@." name est
          | Some [] | None ->
            Format.fprintf ppf "  %-24s (no estimate)@." name)
        analyzed)
    (micro_tests ());
  Format.fprintf ppf "@."

(* --- streamed vs materialized synthetic simulation: the memory win --- *)

(* filled by [run_streaming]; lands under the summary's "streaming" key *)
let streaming_results : (string * Telemetry.Json.t) list ref = ref []

let run_streaming () =
  Format.fprintf ppf "== streamed vs materialized synthetic simulation ==@.";
  let cfg = Config.Machine.baseline in
  let spec = Workload.Suite.find "gcc" in
  let scale = Experiments.Exp_common.scale in
  (* reduction 1 replays the whole profile, so the synthetic trace is
     as long as the profiled stream — long enough that materializing it
     dominates the heap, while the streamed path's footprint stays at
     the feed window regardless *)
  let plen = int_of_float (400_000.0 *. scale) in
  let p = Statsim.profile cfg (Workload.Suite.stream spec ~length:plen) in
  let measure label f =
    Gc.compact ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let m : Uarch.Metrics.t = f () in
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = Gc.allocated_bytes () -. a0 in
    let peak_words = (Gc.stat ()).Gc.top_heap_words in
    let ips = if dt > 0.0 then float_of_int m.committed /. dt else 0.0 in
    Format.fprintf ppf
      "  %-13s %6.2fs  %9.0f ips  %12.0f bytes allocated  peak heap %d words@."
      label dt ips alloc peak_words;
    let open Telemetry.Json in
    ( m,
      Obj
        [
          ("seconds", Num dt);
          ("ips", Num ips);
          ("committed", Num (float_of_int m.committed));
          ("allocated_bytes", Num alloc);
          ("top_heap_words", Num (float_of_int peak_words));
        ] )
  in
  (* streamed first: top_heap_words is a process-lifetime high-water
     mark, so the constant-memory path must record its peak before the
     materializing path raises it *)
  let ms, js =
    measure "streamed" (fun () ->
        Synth.Run.run_stream ~reduction:1 cfg p ~seed:9)
  in
  let mm, jm =
    measure "materialized" (fun () ->
        Synth.Run.run cfg (Statsim.synthesize ~reduction:1 p ~seed:9))
  in
  let identical = Uarch.Metrics.encode ms = Uarch.Metrics.encode mm in
  Format.fprintf ppf "  metrics bit-identical: %b@.@." identical;
  streaming_results :=
    [
      ("streamed", js);
      ("materialized", jm);
      ("metrics_identical", Telemetry.Json.Bool identical);
    ]

(* --- compiled kernel vs interpreted walk: the throughput win --- *)

(* filled by [run_kernel]; lands under the summary's "kernel" key *)
let kernel_results : (string * Telemetry.Json.t) list ref = ref []

let run_kernel () =
  Format.fprintf ppf "== compiled kernel vs interpreted SFG walk ==@.";
  let cfg = Config.Machine.baseline in
  let spec = Workload.Suite.find "gcc" in
  let scale = Experiments.Exp_common.scale in
  (* reduction 1 replays the whole profile: long enough that per-draw
     cost dominates over the walk's fixed setup *)
  let plen = int_of_float (400_000.0 *. scale) in
  let p = Statsim.profile cfg (Workload.Suite.stream spec ~length:plen) in
  (* Each region is timed best-of-N: the bench shares the machine with
     whatever else is running, and a single sample regularly absorbs a
     scheduling hiccup that swamps the engine difference being measured.
     Gc.compact before every repetition — with the previous repetition's
     result dropped first — so no timed region pays marking cost for a
     live 400k-instruction trace from an earlier one. *)
  let reps = 7 in
  let time f =
    let best = ref infinity and res = ref None in
    for _ = 1 to reps do
      res := None;
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      res := Some r
    done;
    (Option.get !res, !best)
  in
  (* the two sides of a comparison interleave their repetitions, so a
     load spike on the shared machine lands on adjacent reps of both
     engines instead of skewing whichever ran second; thunks with large
     outputs must reduce to scalars so no trace stays live across a
     timed rep *)
  let time_pair f g =
    let bf = ref infinity and bg = ref infinity in
    let rf = ref None and rg = ref None in
    for _ = 1 to reps do
      rf := None;
      rg := None;
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !bf then bf := dt;
      rf := Some r;
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let r = g () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !bg then bg := dt;
      rg := Some r
    done;
    (Option.get !rf, !bf, Option.get !rg, !bg)
  in
  let plan, compile_seconds = time (fun () -> Statsim.compile_plan ~reduction:1 p) in
  Format.fprintf ppf "  plan compiled in %.3fs (%d nodes, %d slots)@."
    compile_seconds (Kernel.Plan.nnodes plan) (Kernel.Plan.nslots plan);
  (* the engine comparison measures draw and allocation cost, not
     instrumentation: both walks observe the same histograms, and the
     shared atomic-counter tax only blurs the ratio being reported *)
  let telemetry_was = Telemetry.enabled () in
  Telemetry.set_enabled false;
  (* both engines materialize a 400k-instruction trace, and under the
     default 256k-word nursery the survivor-promotion cadence — not
     engine cost — is the dominant term for either of them. A 1M-word
     minor heap is the size that maximizes the *interpreted* baseline
     as well as the compiled walk on this workload (larger nurseries
     start to hurt the interpreted side), so both run under it *)
  let gc_was = Gc.get () in
  Gc.set { gc_was with Gc.minor_heap_size = 1 lsl 20 };
  let gen_json n dt =
    let ips = if dt > 0.0 then float_of_int n /. dt else 0.0 in
    let open Telemetry.Json in
    ( ips,
      Obj
        [
          ("seconds", Num dt);
          ("ips", Num ips);
          ("instructions", Num (float_of_int n));
        ] )
  in
  let ni, dti, nc, dtc =
    time_pair
      (fun () ->
        Synth.Trace.length
          (Statsim.synthesize ~compile:false ~reduction:1 p ~seed:9))
      (fun () ->
        Synth.Trace.length (Synth.Generate.generate_of_plan plan ~seed:9))
  in
  let interp_ips, ji = gen_json ni dti in
  let compiled_ips, jc = gen_json nc dtc in
  let gen_speedup = if interp_ips > 0.0 then compiled_ips /. interp_ips else 0.0 in
  Format.fprintf ppf "  generate  interpreted %9.0f ips   compiled %9.0f ips   speedup %.2fx@."
    interp_ips compiled_ips gen_speedup;
  let pipe_json (m : Uarch.Metrics.t) dt =
    let ips = if dt > 0.0 then float_of_int m.committed /. dt else 0.0 in
    let open Telemetry.Json in
    (ips, Obj [ ("seconds", Num dt); ("ips", Num ips) ])
  in
  (* the pipeline comparison runs both schedulers over the same trace;
     materialize it once, outside any timed region *)
  let tc = Synth.Generate.generate_of_plan plan ~seed:9 in
  let md, dtd, me, dte =
    time_pair
      (fun () -> Synth.Run.run ~skip_idle:false cfg tc)
      (fun () -> Synth.Run.run cfg tc)
  in
  Gc.set gc_was;
  Telemetry.set_enabled telemetry_was;
  let dense_ips, jd = pipe_json md dtd in
  let event_ips, je = pipe_json me dte in
  let pipe_speedup = if dense_ips > 0.0 then event_ips /. dense_ips else 0.0 in
  let identical = Uarch.Metrics.encode md = Uarch.Metrics.encode me in
  Format.fprintf ppf
    "  pipeline  dense %9.0f ips   event-driven %9.0f ips   speedup %.2fx   metrics bit-identical: %b@.@."
    dense_ips event_ips pipe_speedup identical;
  let open Telemetry.Json in
  kernel_results :=
    [
      ("compile_seconds", Num compile_seconds);
      ( "generate",
        Obj
          [
            ("interpreted", ji);
            ("compiled", jc);
            ("speedup", Num gen_speedup);
          ] );
      ( "pipeline",
        Obj
          [
            ("dense", jd);
            ("event_driven", je);
            ("speedup", Num pipe_speedup);
            ("metrics_identical", Bool identical);
          ] );
    ]

(* --- design-space exploration sweep: the amortization win --- *)

(* filled by [run_dse]; lands under the summary's "dse" key *)
let dse_results : (string * Telemetry.Json.t) list ref = ref []

let run_dse () =
  Format.fprintf ppf "== design-space exploration sweep ==@.";
  let scale = Experiments.Exp_common.scale in
  let sweep =
    Dse.Sweep.make ~name:"bench64"
      (Dse.Sweep.cross
         [
           Dse.Sweep.axis "ruu" [ 16; 32; 64; 128 ];
           Dse.Sweep.axis "lsq" [ 8; 16; 32; 64 ];
           Dse.Sweep.axis "width" [ 2; 4; 6; 8 ];
         ])
  in
  (* a fresh cache so the reported compute counts are the sweep's own,
     not inherited from experiments that ran earlier in the invocation *)
  let cache = Runner.Cache.create () in
  let jobs = Runner.Pool.default_jobs () in
  let t0 = Unix.gettimeofday () in
  match
    Dse.Driver.run ~cache ~jobs
      ~length:(int_of_float (120_000.0 *. scale))
      ~target_length:(int_of_float (20_000.0 *. scale))
      ~sweep
      ~bench:(Workload.Suite.find "gcc")
      ~seed:42 ()
  with
  | Error msg -> Format.fprintf ppf "  sweep failed: %s@.@." msg
  | Ok r ->
    let dt = Unix.gettimeofday () -. t0 in
    let st = Runner.Cache.stats cache in
    let npoints = Array.length r.Dse.Driver.points in
    let pps = if dt > 0.0 then float_of_int npoints /. dt else 0.0 in
    Format.fprintf ppf
      "  %d points in %.2fs (%.1f points/sec)  frontier %d  profile \
       collections %d  plan compilations %d@.@."
      npoints dt pps r.Dse.Driver.frontier_count st.profile_computes
      st.plan_computes;
    let open Telemetry.Json in
    dse_results :=
      [
        ("seconds", Num dt);
        ("points", Num (float_of_int npoints));
        ("points_per_sec", Num pps);
        ("replicas", Num (float_of_int r.Dse.Driver.replicas));
        ("frontier", Num (float_of_int r.Dse.Driver.frontier_count));
        ("profile_collections", Num (float_of_int st.profile_computes));
        ("plan_compilations", Num (float_of_int st.plan_computes));
        ("store_hits", Num (float_of_int st.store_hits));
      ]

(* --- simulation service: request round-trip latency/throughput --- *)

(* filled by [run_serve]; lands under the summary's "serve" key *)
let serve_results : (string * Telemetry.Json.t) list ref = ref []

let run_serve () =
  Format.fprintf ppf "== statsim serve round-trips ==@.";
  let scale = Experiments.Exp_common.scale in
  let stamp = Printf.sprintf "statsim-bench-%d" (Unix.getpid ()) in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ()) (stamp ^ ".sock")
  in
  (* a fresh store root so "cold" really means cold, whatever
     REPRO_CACHE_DIR says *)
  let root = Filename.temp_file stamp "" in
  Sys.remove root;
  let cfg =
    {
      (Server.Daemon.default_config ~socket_path:sock) with
      Server.Daemon.cache_dir = Some root;
    }
  in
  let t = Server.Daemon.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop t;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () ->
      let params =
        let open Telemetry.Json in
        Obj
          [
            ("bench", Str "gcc");
            ("length", Num (Float.round (120_000.0 *. scale)));
            ("synthetic", Num (Float.round (20_000.0 *. scale)));
          ]
      in
      let c = Server.Client.connect ~socket:sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let round_trip label =
            let t0 = Unix.gettimeofday () in
            (match Server.Client.call c ~op:"simulate" params with
            | Ok { Server.Protocol.outcome = Ok _; _ } -> ()
            | Ok { Server.Protocol.outcome = Error (_, msg); _ } ->
              failwith (label ^ ": " ^ msg)
            | Error msg -> failwith (label ^ ": " ^ msg));
            Unix.gettimeofday () -. t0
          in
          (* first response pays profile + plan + EDS reference *)
          let cold = round_trip "cold" in
          (* second response is pure cache hits *)
          let warm_first = round_trip "warm" in
          let reps = 30 in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            ignore (round_trip "warm batch")
          done;
          let warm_seconds = Unix.gettimeofday () -. t0 in
          let rps =
            if warm_seconds > 0.0 then float_of_int reps /. warm_seconds
            else 0.0
          in
          let st = Runner.Cache.stats (Server.Daemon.cache t) in
          Format.fprintf ppf
            "  first response  cold %7.3fs   warm %7.3fs   speedup %.1fx@."
            cold warm_first
            (if warm_first > 0.0 then cold /. warm_first else 0.0);
          Format.fprintf ppf
            "  warm round-trips  %d in %.3fs (%.0f requests/sec)  profile \
             collections %d  plan compilations %d@.@."
            reps warm_seconds rps st.profile_computes st.plan_computes;
          let open Telemetry.Json in
          serve_results :=
            [
              ("cold_first_response_seconds", Num cold);
              ("warm_first_response_seconds", Num warm_first);
              ("warm_requests", Num (float_of_int reps));
              ("warm_seconds", Num warm_seconds);
              ("warm_requests_per_sec", Num rps);
              ("profile_collections", Num (float_of_int st.profile_computes));
              ("plan_compilations", Num (float_of_int st.plan_computes));
            ]))

(* --- variance-aware replication: replicas to reach a CI target --- *)

(* filled by [run_replication]; lands under the summary's "replication"
   key *)
let replication_results : (string * Telemetry.Json.t) list ref = ref []

let run_replication () =
  Format.fprintf ppf
    "== variance-aware replication: replicas to reach the CI target ==@.";
  let cfg = Config.Machine.baseline in
  let spec = Workload.Suite.find "gcc" in
  (* Fixed sizes, deliberately NOT scaled by REPRO_SCALE: this bench
     measures statistical efficiency — replicas needed to reach the CI
     target — which is a property of the noise regime (trace length),
     not of machine speed. Scaling the trace length would change the
     per-replica variance and make replica counts incomparable across
     baseline runs; as it stands every count below is deterministic.
     Short 2k-instruction traces put per-replica sampling noise — the
     thing replication fights — in charge of the error budget; the
     8-per-stratum pilot gives the control-variate coefficient enough
     degrees of freedom to pass its significance guard. *)
  let plen = 16_000 and tlen = 2_000 in
  let ci_target = 3.0 in
  let pilot = 8 in
  let p = Statsim.profile cfg (Workload.Suite.stream spec ~length:plen) in
  let jobs = Runner.Pool.default_jobs () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let line label n rel dt =
    Format.fprintf ppf "  %-16s %3d replicas   ci95 %5.2f%% of mean   %6.2fs@."
      label n rel dt
  in
  let result_json n rel dt =
    let open Telemetry.Json in
    Obj
      [
        ("replicas", Num (float_of_int n));
        ("ci95_rel_pct", Num rel);
        ("seconds", Num dt);
      ]
  in
  let blind, blind_dt =
    time (fun () ->
        Synth.Replicate.run_ci ~jobs ~target_length:tlen cfg p ~master_seed:42
          ~ci_target)
  in
  let blind_n = Synth.Replicate.replicas blind in
  let blind_rel =
    if blind.Synth.Replicate.ipc.mean > 0.0 then
      100.0 *. blind.Synth.Replicate.ipc.ci95 /. blind.Synth.Replicate.ipc.mean
    else 0.0
  in
  line "blind doubling" blind_n blind_rel blind_dt;
  let strat ~control_variate =
    time (fun () ->
        Synth.Stratify.run_ci ~jobs ~target_length:tlen ~pilot ~control_variate
          cfg p ~master_seed:42 ~ci_target)
  in
  let strat_rel (t : Synth.Stratify.t) =
    if t.ipc.mean > 0.0 then 100.0 *. t.ipc.ci95 /. t.ipc.mean else 0.0
  in
  let plain, plain_dt = strat ~control_variate:false in
  let plain_n = Synth.Stratify.total_replicas plain in
  line "stratified" plain_n (strat_rel plain) plain_dt;
  let cv, cv_dt = strat ~control_variate:true in
  let cv_n = Synth.Stratify.total_replicas cv in
  line "stratified+cv" cv_n (strat_rel cv) cv_dt;
  let saved =
    if blind_n > 0 then float_of_int (blind_n - cv_n) /. float_of_int blind_n
    else 0.0
  in
  Format.fprintf ppf
    "  strata %d   beta %s   replicas saved vs blind %.0f%%@.@."
    (Synth.Stratify.strata cv)
    (match cv.Synth.Stratify.beta with
    | Some b -> Printf.sprintf "%.3f" b
    | None -> "none (plain fallback)")
    (100.0 *. saved);
  let open Telemetry.Json in
  replication_results :=
    [
      ("ci_target_pct", Num ci_target);
      ("blind", result_json blind_n blind_rel blind_dt);
      ("stratified", result_json plain_n (strat_rel plain) plain_dt);
      ("stratified_cv", result_json cv_n (strat_rel cv) cv_dt);
      ("strata", Num (float_of_int (Synth.Stratify.strata cv)));
      ( "beta",
        match cv.Synth.Stratify.beta with Some b -> Num b | None -> Null );
      ("replicas_saved_frac", Num saved);
    ]

(* --- driver --- *)

(* one ctx for the whole invocation: the memo cache shares EDS
   references and profiles across every experiment that runs *)
let ctx = lazy (Runner.Exec.create_ctx ())

(* (id, seconds) in run order, for the machine-readable summary *)
let timings : (string * float) list ref = ref []

let usage () =
  Format.fprintf ppf "experiments:@.";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      Format.fprintf ppf "  %-8s %s@." e.id e.description)
    Experiments.Registry.all;
  Format.fprintf ppf "  %-8s %s@." "micro" "bechamel component micro-benchmarks";
  Format.fprintf ppf "  %-8s %s@." "streaming"
    "streamed vs materialized synthetic simulation (time and memory)";
  Format.fprintf ppf "  %-8s %s@." "kernel"
    "compiled plan vs interpreted walk, event-driven vs dense pipeline";
  (* "dse" is taken by the paper's DSE case-study experiment above *)
  Format.fprintf ppf "  %-8s %s@." "sweep"
    "64-point design-space sweep: one profile + one plan, points/sec";
  Format.fprintf ppf "  %-8s %s@." "serve"
    "daemon round-trips: time-to-first-response cold vs warm, requests/sec";
  Format.fprintf ppf "  %-8s %s@." "replication"
    "replicas to reach the CI target: blind doubling vs stratified+CV"

let run_one id =
  match Experiments.Registry.find id with
  | Some e ->
    let ctx = Lazy.force ctx in
    let t0 = Unix.gettimeofday () in
    Runner.Report.to_text ppf (Runner.Exec.run ctx e.plan);
    let dt = Unix.gettimeofday () -. t0 in
    timings := (id, dt) :: !timings;
    Format.fprintf ppf "[%s done in %.1fs]@.@." id dt
  | None ->
    if id = "micro" then run_micro ()
    else if id = "streaming" then run_streaming ()
    else if id = "kernel" then run_kernel ()
    else if id = "sweep" then run_dse ()
    else if id = "serve" then run_serve ()
    else if id = "replication" then run_replication ()
    else begin
      Format.fprintf ppf "unknown experiment %S@." id;
      usage ();
      exit 2
    end

(* --- machine-readable summary --- *)

(* The per-stage breakdown pairs a pipeline-stage span with its
   instruction counter, so the summary carries both seconds and
   instructions-per-second per stage. Stage totals accumulate across
   worker domains; at REPRO_JOBS=1 they are comparable to wall time. *)
let stages =
  [
    ("profile", "profile.collect", "profile.instructions");
    ("generate", "synth.generate", "synth.instructions");
    ("simulate_synthetic", "synth.simulate", "synth.simulated_instructions");
    ("simulate_eds", "uarch.eds", "uarch.eds_instructions");
  ]

let stages_json snap =
  let open Telemetry.Json in
  Obj
    (List.map
       (fun (stage, span_name, counter_name) ->
         let secs =
           match Telemetry.span_stat snap span_name with
           | Some s -> float_of_int s.Telemetry.total_ns /. 1e9
           | None -> 0.0
         in
         let insts = Telemetry.counter_total snap counter_name in
         ( stage,
           Obj
             [
               ("seconds", Num secs);
               ("instructions", Num (float_of_int insts));
               ( "ips",
                 Num (if secs > 0.0 then float_of_int insts /. secs else 0.0)
               );
             ] ))
       stages)

let summary_json ts =
  let open Telemetry.Json in
  let ctx = Lazy.force ctx in
  let st = Runner.Cache.stats ctx.cache in
  let snap = Telemetry.snapshot () in
  Obj
    [
      ("jobs", Num (float_of_int ctx.jobs));
      ("scale", Num Experiments.Exp_common.scale);
      ( "experiments",
        Arr
          (List.map
             (fun (id, dt) -> Obj [ ("id", Str id); ("seconds", Num dt) ])
             ts) );
      ( "total_seconds",
        Num (List.fold_left (fun a (_, dt) -> a +. dt) 0.0 ts) );
      ("stages", stages_json snap);
      (* streamed-vs-materialized comparison; empty unless the
         "streaming" bench ran this invocation *)
      ("streaming", Obj !streaming_results);
      (* compiled-kernel throughput comparison; empty unless the
         "kernel" bench ran this invocation *)
      ("kernel", Obj !kernel_results);
      (* design-space sweep throughput and amortization counters; empty
         unless the "dse" bench ran this invocation *)
      ("dse", Obj !dse_results);
      (* daemon round-trip latency and throughput; empty unless the
         "serve" bench ran this invocation *)
      ("serve", Obj !serve_results);
      (* replicas-to-target-CI comparison (blind doubling vs stratified
         vs stratified + control variate); empty unless the
         "replication" bench ran this invocation *)
      ("replication", Obj !replication_results);
      (* distribution instruments (dependency distances, redirect run
         lengths, pipeline occupancies): totals and means only — the
         full bucket vectors live in the telemetry snapshot. Registered
         histograms that never fired this invocation are elided: a
         count-0 entry says nothing and would churn baseline diffs as
         instruments come and go. *)
      ( "histograms",
        Obj
          (List.filter_map
             (fun (h : Telemetry.histogram_stat) ->
               if h.Telemetry.count = 0 then None
               else
                 Some
                   ( h.Telemetry.hist_name,
                     Obj
                       [
                         ("count", Num (float_of_int h.Telemetry.count));
                         ( "mean",
                           Num
                             (float_of_int h.Telemetry.sum
                             /. float_of_int h.Telemetry.count) );
                       ] ))
             snap.Telemetry.histograms) );
      ( "cache",
        Obj
          [
            ("profile_hits", Num (float_of_int st.profile_hits));
            ("profile_misses", Num (float_of_int st.profile_misses));
            ("reference_hits", Num (float_of_int st.reference_hits));
            ("reference_misses", Num (float_of_int st.reference_misses));
            ("plan_hits", Num (float_of_int st.plan_hits));
            ("plan_misses", Num (float_of_int st.plan_misses));
          ] );
      (* persistent artifact-store counters (all zero unless the run set
         REPRO_CACHE_DIR and the memo cache has a disk tier) *)
      ( "store",
        Obj
          [
            ("hits", Num (float_of_int st.store_hits));
            ("misses", Num (float_of_int st.store_misses));
            ("bytes_written", Num (float_of_int st.store_bytes_written));
            ("quarantined", Num (float_of_int st.store_quarantined));
          ] );
    ]

let write_summary ~out =
  let ts = List.rev !timings in
  if
    ts = [] && !streaming_results = [] && !kernel_results = []
    && !dse_results = [] && !replication_results = []
  then ()
  else
    let oc = open_out out in
    output_string oc (Telemetry.Json.to_string (summary_json ts));
    output_char oc '\n';
    close_out oc;
    Format.fprintf ppf "[timing summary written to %s]@." out

let default_out =
  match Sys.getenv_opt "REPRO_BENCH_OUT" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_summary.json"

(* id arguments, plus --out PATH / --out=PATH for the summary *)
let parse_args argv =
  let out = ref default_out in
  let ids = ref [] in
  let rec go = function
    | [] -> ()
    | "--out" :: path :: rest ->
      out := path;
      go rest
    | arg :: rest when String.length arg > 6 && String.sub arg 0 6 = "--out="
      ->
      out := String.sub arg 6 (String.length arg - 6);
      go rest
    | ("-h" | "--help" | "help") :: _ ->
      usage ();
      exit 0
    | id :: rest ->
      ids := id :: !ids;
      go rest
  in
  go argv;
  (!out, List.rev !ids)

let () =
  (* the harness is the measurement tool: always collect its own
     per-stage telemetry (REPRO_TELEMETRY additionally covers library
     users and the CLI) *)
  Telemetry.set_enabled true;
  let out, ids = parse_args (List.tl (Array.to_list Sys.argv)) in
  (match ids with
  | [] ->
    List.iter
      (fun (e : Experiments.Registry.entry) -> run_one e.id)
      Experiments.Registry.all;
    run_micro ();
    run_streaming ();
    run_kernel ();
    run_dse ();
    run_replication ()
  | ids -> List.iter run_one ids);
  write_summary ~out

(* CI perf-regression gate: compare a fresh BENCH_summary.json against
   the checked-in bench/baseline.json.

   Usage:
     dune exec bench/perf_gate.exe -- \
       [--baseline bench/baseline.json] [--current BENCH_summary.json] \
       [--threshold 1.0]

   The verdict logic lives in lib/gate (unit-tested); this executable
   parses arguments, reads the two documents and prints the table.

   Gated metrics:
     - per-stage seconds (profile / generate / simulate stages / DSE
       sweep): fail when the current run is slower than
       baseline * (1 + threshold), with a small absolute slack so
       near-zero timings at tiny REPRO_SCALE cannot trip the relative
       test;
     - memo-cache hit/miss counts and the DSE driver's profile/plan
       compute counts: deterministic for a fixed experiment selection,
       so a drift beyond the threshold in either direction signals a
       behavioral change and fails the gate;
     - whole summary sections: a section the baseline has numbers for
       but the fresh summary leaves empty is a named failure (the
       bench selection stopped running it), never a silent skip.

   Timings are compared at a generous threshold (default +100%) because
   CI machines vary; the gate exists to catch order-of-magnitude
   hot-path regressions, not 10% noise. Exit status: 0 pass, 1 regression,
   2 usage/parse error. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_json path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> die "perf_gate: cannot read %s: %s" path msg
  in
  match Telemetry.Json.of_string contents with
  | Ok v -> v
  | Error msg -> die "perf_gate: %s: %s" path msg

let () =
  let baseline_file = ref "bench/baseline.json" in
  let current_file = ref "BENCH_summary.json" in
  let threshold = ref 1.0 in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline_file := v;
      parse rest
    | "--current" :: v :: rest ->
      current_file := v;
      parse rest
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> threshold := t
      | Some _ | None -> die "perf_gate: invalid --threshold %s" v);
      parse rest
    | arg :: _ -> die "perf_gate: unknown argument %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline = read_json !baseline_file in
  let current = read_json !current_file in
  let results =
    List.map
      (Gate.evaluate ~threshold:!threshold ~baseline ~current)
      Gate.default_checks
  in
  Printf.printf "perf gate: %s vs baseline %s (threshold +%.0f%%)\n"
    !current_file !baseline_file (100.0 *. !threshold);
  Printf.printf "  %-34s %12s %12s %9s  %s\n" "metric" "baseline" "current"
    "delta" "status";
  let failures = ref 0 in
  List.iter
    (fun (check, b, c, verdict) ->
      let fmt v =
        if Float.is_nan v then "-"
        else if Float.is_integer v then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.3f" v
      in
      let delta =
        if Float.is_nan b || Float.is_nan c then "-"
        else if Float.abs b > 0.0 then
          Printf.sprintf "%+.0f%%" (100.0 *. (c -. b) /. Float.abs b)
        else Printf.sprintf "%+.3f" (c -. b)
      in
      if Gate.failed verdict then incr failures;
      let status =
        match verdict with
        | Gate.Pass -> "ok"
        | Gate.Regressed -> "REGRESSED"
        | Gate.Missing -> "MISSING"
        | Gate.New -> "new (no baseline)"
      in
      Printf.printf "  %-34s %12s %12s %9s  %s\n" check.Gate.label (fmt b)
        (fmt c) delta status)
    results;
  (* sections the baseline gates but the fresh summary left empty: a
     bench selection that silently stopped running a whole benchmark
     must fail by name, not pass by omission *)
  let empty_sections = Gate.missing_sections ~baseline ~current in
  List.iter
    (fun name ->
      incr failures;
      Printf.printf "  %-34s %12s %12s %9s  %s\n" ("section." ^ name)
        "(object)" "-" "-" "MISSING")
    empty_sections;
  (match
     (Gate.num_field baseline [ "total_seconds" ],
      Gate.num_field current [ "total_seconds" ])
   with
  | Some b, Some c ->
    Printf.printf "  (total_seconds %.3f -> %.3f, informational)\n" b c
  | _ -> ());
  (* informational: compiled-over-interpreted throughput ratios from the
     current run — speed is what the kernel exists for, but a ratio on a
     shared CI machine is too noisy to gate on *)
  (match Gate.num_field current [ "kernel"; "generate"; "speedup" ] with
  | Some s ->
    Printf.printf
      "  (kernel generate speedup %.2fx compiled/interpreted, informational)\n"
      s
  | None -> ());
  (match Gate.num_field current [ "kernel"; "pipeline"; "speedup" ] with
  | Some s ->
    Printf.printf
      "  (kernel pipeline speedup %.2fx event-driven/dense, informational)\n" s
  | None -> ());
  (* informational until a baseline with a dse section lands *)
  (match Gate.num_field current [ "dse"; "points_per_sec" ] with
  | Some s ->
    Printf.printf "  (dse sweep throughput %.1f points/sec, informational)\n" s
  | None -> ());
  if !failures > 0 then begin
    Printf.printf "FAIL: %d metric(s) regressed or missing\n" !failures;
    exit 1
  end
  else print_endline "PASS"

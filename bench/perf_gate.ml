(* CI perf-regression gate: compare a fresh BENCH_summary.json against
   the checked-in bench/baseline.json.

   Usage:
     dune exec bench/perf_gate.exe -- \
       [--baseline bench/baseline.json] [--current BENCH_summary.json] \
       [--threshold 1.0]

   Gated metrics:
     - per-stage seconds (profile / generate / simulate stages): fail when
       the current run is slower than baseline * (1 + threshold), with
       a small absolute slack so near-zero timings at tiny REPRO_SCALE
       cannot trip the relative test;
     - memo-cache hit/miss counts: deterministic for a fixed
       experiment selection, so a drift beyond the threshold in either
       direction signals a behavioral change (fewer shared profiles,
       changed cache keys) and fails the gate.

   Timings are compared at a generous threshold (default +100%) because
   CI machines vary; the gate exists to catch order-of-magnitude
   hot-path regressions, not 10% noise. Exit status: 0 pass, 1 regression,
   2 usage/parse error. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_json path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> die "perf_gate: cannot read %s: %s" path msg
  in
  match Telemetry.Json.of_string contents with
  | Ok v -> v
  | Error msg -> die "perf_gate: %s: %s" path msg

let num_field json path =
  let rec go json = function
    | [] -> Telemetry.Json.to_num json
    | k :: rest -> (
      match Telemetry.Json.member k json with
      | Some v -> go v rest
      | None -> None)
  in
  go json path

(* one gated metric: seconds regress only when slower; counts drift in
   either direction *)
type check = {
  label : string;
  path : string list;
  both_directions : bool;
  abs_slack : float;
}

let stage_names =
  [ "profile"; "generate"; "simulate_synthetic"; "simulate_eds" ]

let checks =
  List.map
    (fun stage ->
      {
        label = "stage." ^ stage ^ ".seconds";
        path = [ "stages"; stage; "seconds" ];
        both_directions = false;
        abs_slack = 0.05;
      })
    stage_names
  @ List.map
      (fun field ->
        {
          label = "cache." ^ field;
          path = [ "cache"; field ];
          both_directions = true;
          abs_slack = 1.0;
        })
      [
        "profile_hits";
        "profile_misses";
        "reference_hits";
        "reference_misses";
        "plan_hits";
        "plan_misses";
      ]
  (* the CI bench run has no REPRO_CACHE_DIR, so these must stay 0 —
     a nonzero value means the gate run accidentally used a store *)
  @ List.map
      (fun field ->
        {
          label = "store." ^ field;
          path = [ "store"; field ];
          both_directions = true;
          abs_slack = 0.5;
        })
      [ "hits"; "misses"; "bytes_written"; "quarantined" ]
  (* streamed-vs-materialized bench: gate the timings like any stage
     (informational until the baseline is regenerated with them) *)
  @ List.map
      (fun path_kind ->
        {
          label = "streaming." ^ path_kind ^ ".seconds";
          path = [ "streaming"; path_kind; "seconds" ];
          both_directions = false;
          abs_slack = 0.05;
        })
      [ "streamed"; "materialized" ]
  (* compiled-kernel bench: plan compilation and both engines' wall
     times, gated one-directionally like every timing *)
  @ List.map
      (fun (label, path) ->
        { label; path; both_directions = false; abs_slack = 0.05 })
      [
        ("kernel.compile_seconds", [ "kernel"; "compile_seconds" ]);
        ( "kernel.generate.interpreted.seconds",
          [ "kernel"; "generate"; "interpreted"; "seconds" ] );
        ( "kernel.generate.compiled.seconds",
          [ "kernel"; "generate"; "compiled"; "seconds" ] );
        ( "kernel.pipeline.dense.seconds",
          [ "kernel"; "pipeline"; "dense"; "seconds" ] );
        ( "kernel.pipeline.event_driven.seconds",
          [ "kernel"; "pipeline"; "event_driven"; "seconds" ] );
      ]

type verdict = Ok_ | Regressed | Missing | New

let evaluate ~threshold ~baseline ~current check =
  match (num_field baseline check.path, num_field current check.path) with
  (* a metric the baseline predates (new summary sections land before
     the baseline is regenerated) is informational, not a failure; a
     metric missing from the *current* run still fails — the harness
     stopped producing it *)
  | None, _ -> (check, nan, nan, New)
  | Some b, None -> (check, b, nan, Missing)
  | Some b, Some c ->
    let delta = c -. b in
    let over_rel =
      if check.both_directions then Float.abs delta > threshold *. Float.abs b
      else delta > threshold *. Float.abs b
    in
    let over_abs = Float.abs delta > check.abs_slack in
    ( check,
      b,
      c,
      if over_rel && over_abs then Regressed else Ok_ )

let () =
  let baseline_file = ref "bench/baseline.json" in
  let current_file = ref "BENCH_summary.json" in
  let threshold = ref 1.0 in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline_file := v;
      parse rest
    | "--current" :: v :: rest ->
      current_file := v;
      parse rest
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> threshold := t
      | Some _ | None -> die "perf_gate: invalid --threshold %s" v);
      parse rest
    | arg :: _ -> die "perf_gate: unknown argument %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline = read_json !baseline_file in
  let current = read_json !current_file in
  let results =
    List.map (evaluate ~threshold:!threshold ~baseline ~current) checks
  in
  Printf.printf "perf gate: %s vs baseline %s (threshold +%.0f%%)\n"
    !current_file !baseline_file (100.0 *. !threshold);
  Printf.printf "  %-34s %12s %12s %9s  %s\n" "metric" "baseline" "current"
    "delta" "status";
  let failures = ref 0 in
  List.iter
    (fun (check, b, c, verdict) ->
      let fmt v =
        if Float.is_nan v then "-"
        else if Float.is_integer v then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.3f" v
      in
      let delta =
        if Float.is_nan b || Float.is_nan c then "-"
        else if Float.abs b > 0.0 then
          Printf.sprintf "%+.0f%%" (100.0 *. (c -. b) /. Float.abs b)
        else Printf.sprintf "%+.3f" (c -. b)
      in
      let status =
        match verdict with
        | Ok_ -> "ok"
        | Regressed ->
          incr failures;
          "REGRESSED"
        | Missing ->
          incr failures;
          "MISSING"
        | New -> "new (no baseline)"
      in
      Printf.printf "  %-34s %12s %12s %9s  %s\n" check.label (fmt b) (fmt c)
        delta status)
    results;
  (match
     (num_field baseline [ "total_seconds" ], num_field current [ "total_seconds" ])
   with
  | Some b, Some c ->
    Printf.printf "  (total_seconds %.3f -> %.3f, informational)\n" b c
  | _ -> ());
  (* informational: compiled-over-interpreted throughput ratios from the
     current run — speed is what the kernel exists for, but a ratio on a
     shared CI machine is too noisy to gate on *)
  (match num_field current [ "kernel"; "generate"; "speedup" ] with
  | Some s ->
    Printf.printf "  (kernel generate speedup %.2fx compiled/interpreted, informational)\n" s
  | None -> ());
  (match num_field current [ "kernel"; "pipeline"; "speedup" ] with
  | Some s ->
    Printf.printf "  (kernel pipeline speedup %.2fx event-driven/dense, informational)\n" s
  | None -> ());
  if !failures > 0 then begin
    Printf.printf "FAIL: %d metric(s) regressed or missing\n" !failures;
    exit 1
  end
  else print_endline "PASS"

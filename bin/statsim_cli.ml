(* Command-line interface to the statistical-simulation framework.

   Subcommands:
     simulate    run statistical and/or execution-driven simulation
     estimate    zero-simulation steady-state IPC/mix estimate
     profile     print statistical-profile facts (SFG size, MPKI, ...)
     diag        profile-vs-synthetic-trace divergence diagnostics
     experiment  regenerate one of the paper's tables/figures
     dse         design-space sweep with a CI-aware Pareto frontier report
     serve       long-lived simulation daemon on a Unix/TCP socket
     client      send one request to a running daemon
     list        list workloads and experiments

   simulate and diag execute through Server.Ops — the same dispatcher
   the daemon runs — so a server reply is byte-identical to the
   one-shot output by construction. *)

open Cmdliner

(* Print an Ops result the way the pre-server CLI did: report on
   stdout, warnings and diag-check verdicts on stderr, exit 1 on a
   failed check. *)
let print_ops_result r =
  print_string (Server.Ops.output r);
  List.iter
    (fun w -> Printf.eprintf "%s\n" w)
    (Server.Ops.warnings r);
  (match Telemetry.Json.member "check_message" r with
  | Some (Telemetry.Json.Str m) -> Printf.eprintf "%s\n" m
  | _ -> ());
  match Telemetry.Json.member "check_ok" r with
  | Some (Telemetry.Json.Bool false) -> exit 1
  | _ -> ()

let run_ops env ~op params =
  match Server.Ops.dispatch env ~op params with
  | Ok r -> print_ops_result r
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let bench_arg =
  let doc = "Workload name (one of the SPECint stand-ins)." in
  Arg.(value & opt string "gcc" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let length_arg =
  let doc = "Reference dynamic instruction stream length." in
  Arg.(value & opt int 300_000 & info [ "n"; "length" ] ~docv:"N" ~doc)

let syn_arg =
  let doc = "Synthetic trace target length." in
  Arg.(value & opt int 40_000 & info [ "s"; "synthetic" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for synthetic trace generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let k_arg =
  let doc = "SFG order (0-3): blocks are qualified by K predecessors." in
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc)

let k_opt_arg =
  let doc = "SFG order (0-3): blocks are qualified by K predecessors." in
  Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc)

let spec_of_name name =
  match Workload.Suite.find name with
  | spec -> spec
  | exception Not_found ->
    Printf.eprintf "unknown workload %S; try: %s\n" name
      (String.concat " " Workload.Suite.names);
    exit 2

let save_arg =
  let doc = "Write the collected profile to $(docv) (reloadable with simulate --profile)." in
  Arg.(value & opt (some string) None & info [ "o"; "save" ] ~docv:"FILE" ~doc)

let load_arg =
  let doc = "Reuse a saved profile instead of re-profiling." in
  Arg.(value & opt (some string) None & info [ "p"; "profile" ] ~docv:"FILE" ~doc)

let stream_arg =
  let doc =
    "Stream the SFG walk straight into the pipeline in constant memory \
     instead of materializing the synthetic trace first. Bit-identical \
     metrics for the same seed."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let replicas_arg =
  let doc =
    "Run $(docv) independent replicas (seeds split deterministically from \
     $(b,--seed)) and report mean, stddev and the 95% confidence interval \
     for IPC and the stall-cause fractions instead of a single run."
  in
  Arg.(value & opt (some int) None & info [ "replicas" ] ~docv:"N" ~doc)

let ci_target_arg =
  let doc =
    "Adaptive replication: grow the replica count (doubling from \
     $(b,--replicas), default 4) until the IPC confidence half-width is at \
     most $(docv) percent of the mean."
  in
  Arg.(
    value & opt (some float) None & info [ "ci-target" ] ~docv:"PCT" ~doc)

let no_compile_arg =
  let doc =
    "Use the interpreted SFG walk instead of the compiled execution plan. \
     The compiled kernel (the default) lowers the graph into flat arrays \
     with alias samplers and is statistically equivalent; this escape hatch \
     exists for cross-checking the two engines and for debugging."
  in
  Arg.(value & flag & info [ "no-compile" ] ~doc)

let cache_dir_arg =
  let doc =
    "Persistent artifact-store directory: statistical profiles and EDS \
     references are published there and answered from disk on later runs, \
     across processes (default: $(b,REPRO_CACHE_DIR); unset = in-memory \
     only)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* Optional-field helpers for building op params. *)
let jnum i = Telemetry.Json.Num (float_of_int i)

let jopt k f v =
  match v with None -> [] | Some v -> [ (k, f v) ]

let simulate_cmd =
  let run bench length syn seed k profile_file stream no_compile replicas
      ci_target stratify no_control_variate strata pilot jobs json cache_dir =
    let params =
      Telemetry.Json.Obj
        ([
           ("bench", Telemetry.Json.Str bench);
           ("length", jnum length);
           ("synthetic", jnum syn);
           ("seed", jnum seed);
           ("stream", Telemetry.Json.Bool stream);
           ("no_compile", Telemetry.Json.Bool no_compile);
           ("stratify", Telemetry.Json.Bool stratify);
           ("control_variate", Telemetry.Json.Bool (not no_control_variate));
           ("json", Telemetry.Json.Bool json);
         ]
        @ jopt "k" jnum k
        @ jopt "profile" (fun s -> Telemetry.Json.Str s) profile_file
        @ jopt "replicas" jnum replicas
        @ jopt "ci_target" (fun v -> Telemetry.Json.Num v) ci_target
        @ jopt "strata" jnum strata
        @ jopt "pilot" jnum pilot
        @ jopt "jobs" jnum jobs)
    in
    let env = Server.Ops.default_env ?jobs ?cache_dir () in
    run_ops env ~op:"simulate" params
  in
  let stratify_arg =
    let doc =
      "Variance-aware replication: partition the replica budget across SFG \
       phase strata (k-means over node behaviour), pilot each stratum, then \
       spend the rest by Neyman allocation; with $(b,--ci-target), \
       $(b,--replicas) caps the total budget (default 64)."
    in
    Arg.(value & flag & info [ "stratify" ] ~doc)
  in
  let no_cv_arg =
    let doc =
      "With $(b,--stratify): disable the analytical control variate and \
       report the plain stratified mean."
    in
    Arg.(value & flag & info [ "no-control-variate" ] ~doc)
  in
  let strata_arg =
    let doc =
      "With $(b,--stratify): force exactly $(docv) strata instead of \
       BIC-selected k-means (up to 4)."
    in
    Arg.(value & opt (some int) None & info [ "strata" ] ~docv:"K" ~doc)
  in
  let pilot_arg =
    let doc = "With $(b,--stratify): pilot replicas per stratum (default 3)." in
    Arg.(value & opt (some int) None & info [ "pilot" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains for replicas (never changes the result)." in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the replication report as a JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc = "compare statistical simulation against the execution-driven reference" in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ bench_arg $ length_arg $ syn_arg $ seed_arg $ k_opt_arg
      $ load_arg $ stream_arg $ no_compile_arg $ replicas_arg $ ci_target_arg
      $ stratify_arg $ no_cv_arg $ strata_arg $ pilot_arg $ jobs_arg $ json_arg
      $ cache_dir_arg)

(* --- zero-simulation steady-state estimate: statsim estimate --- *)

let estimate_cmd =
  let run bench length syn reduction k profile_file json cache_dir =
    let params =
      Telemetry.Json.Obj
        ([
           ("bench", Telemetry.Json.Str bench);
           ("length", jnum length);
           ("synthetic", jnum syn);
           ("json", Telemetry.Json.Bool json);
         ]
        @ jopt "reduction" jnum reduction
        @ jopt "k" jnum k
        @ jopt "profile" (fun s -> Telemetry.Json.Str s) profile_file)
    in
    let env = Server.Ops.default_env ?cache_dir () in
    run_ops env ~op:"estimate" params
  in
  let reduction_arg =
    let doc =
      "Analyze the chain at reduction factor $(docv) instead of the \
       $(b,--synthetic) target length."
    in
    Arg.(value & opt (some int) None & info [ "R"; "reduction" ] ~docv:"R" ~doc)
  in
  let json_arg =
    let doc = "Emit the estimate as a JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "zero-simulation IPC/mix estimate from the stationary distribution of \
     the reduced SFG (closed-form, microseconds)"
  in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(
      const run $ bench_arg $ length_arg $ syn_arg $ reduction_arg $ k_opt_arg
      $ load_arg $ json_arg $ cache_dir_arg)

let force_arg =
  let doc = "Overwrite an existing output file." in
  Arg.(value & flag & info [ "force" ] ~doc)

(* --- fidelity observatory: statsim diag --- *)

let diag_cmd =
  let run bench length syn reduction seed k profile_file no_compile json check
      eds cache_dir =
    let params =
      Telemetry.Json.Obj
        ([
           ("bench", Telemetry.Json.Str bench);
           ("length", jnum length);
           ("synthetic", jnum syn);
           ("seed", jnum seed);
           ("no_compile", Telemetry.Json.Bool no_compile);
           ("json", Telemetry.Json.Bool json);
           ("eds", Telemetry.Json.Bool eds);
         ]
        @ jopt "reduction" jnum reduction
        @ jopt "k" jnum k
        @ jopt "profile" (fun s -> Telemetry.Json.Str s) profile_file
        @ jopt "check" (fun v -> Telemetry.Json.Num v) check)
    in
    let env = Server.Ops.default_env ?cache_dir () in
    run_ops env ~op:"diag" params
  in
  let reduction_arg =
    let doc =
      "Generate with reduction factor $(docv) instead of a target length \
       ($(b,-R 1) replays the whole profile; the CI self-check uses it)."
    in
    Arg.(value & opt (some int) None & info [ "R"; "reduction" ] ~docv:"R" ~doc)
  in
  let json_arg =
    let doc = "Emit the report as a JSON document instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let check_arg =
    let doc =
      "Exit non-zero unless every feature's max absolute probability delta \
       is at most $(docv) — the CI fidelity gate."
    in
    Arg.(
      value & opt (some float) None & info [ "check" ] ~docv:"EPS" ~doc)
  in
  let eds_arg =
    let doc =
      "Also run the execution-driven reference and the synthetic trace \
       through the pipeline and report IPC, occupancy and per-cause \
       dispatch-stall deltas."
    in
    Arg.(value & flag & info [ "eds" ] ~doc)
  in
  let doc =
    "compare a synthetic trace's distributions against its statistical \
     profile (KL divergence, chi-square, max probability delta per feature)"
  in
  Cmd.v (Cmd.info "diag" ~doc)
    Term.(
      const run $ bench_arg $ length_arg $ syn_arg $ reduction_arg $ seed_arg
      $ k_opt_arg $ load_arg $ no_compile_arg $ json_arg $ check_arg
      $ eds_arg $ cache_dir_arg)

let profile_cmd =
  let run bench length k save force =
    (* fail on a clobber before paying for the profiling pass *)
    (match save with
    | Some path when (not force) && Sys.file_exists path ->
      Printf.eprintf "refusing to overwrite %s (use --force)\n" path;
      exit 1
    | Some _ | None -> ());
    let cfg = Config.Machine.baseline in
    let spec = spec_of_name bench in
    let p = Statsim.profile ~k cfg (Workload.Suite.stream spec ~length) in
    Printf.printf "%s\n" (Workload.Program.stats (Workload.Suite.program spec));
    Printf.printf "profiled instructions:   %d\n" p.instructions;
    Printf.printf "SFG order k:             %d\n" p.k;
    Printf.printf "SFG nodes:               %d\n" (Profile.Sfg.node_count p.sfg);
    Printf.printf "mean basic-block size:   %.2f\n"
      (Profile.Stat_profile.mean_block_size p);
    Printf.printf "branches / mispredicts:  %d / %d (MPKI %.2f)\n" p.branches
      p.mispredicts
      (Profile.Stat_profile.mpki p);
    (* aggregate locality rates *)
    let f = ref 0 and l1i = ref 0 and ld = ref 0 and l1d = ref 0 in
    Profile.Sfg.iter_nodes p.sfg (fun n ->
        f := !f + n.fetches;
        l1i := !l1i + n.l1i_misses;
        ld := !ld + n.loads;
        l1d := !l1d + n.l1d_misses);
    let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b) in
    Printf.printf "L1 I-miss rate:          %.2f%%\n" (pct !l1i !f);
    Printf.printf "L1 D-miss rate:          %.2f%%\n" (pct !l1d !ld);
    match save with
    | None -> ()
    | Some path ->
      Profile.Serialize.save_file p path;
      Printf.printf "profile saved to %s\n" path
  in
  let doc = "collect a statistical profile and print its headline facts" in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ bench_arg $ length_arg $ k_arg $ save_arg $ force_arg)

let format_arg =
  let doc = "Report format: $(b,text) (the paper tables), $(b,csv) or $(b,json)." in
  Arg.(
    value
    & opt
        (enum
           [
             ("text", Runner.Report.Text);
             ("csv", Runner.Report.Csv);
             ("json", Runner.Report.Json);
           ])
        Runner.Report.Text
    & info [ "f"; "format" ] ~docv:"FMT" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for experiment jobs (default: $(b,REPRO_JOBS), or 1 = \
     serial)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let telemetry_arg =
  let doc =
    "Collect pipeline telemetry (per-stage span timers, memo-cache and \
     instruction counters) and print it after the reports — as a JSON \
     document under a $(b,telemetry) key with $(b,--format=json), as a text \
     block otherwise. $(b,REPRO_TELEMETRY=1) enables the same collection \
     process-wide."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let experiment_cmd =
  let run ids format jobs telemetry cache_dir trace_out diag replicas =
    let ppf = Format.std_formatter in
    if telemetry then Telemetry.set_enabled true;
    if trace_out <> None then Telemetry.set_capture true;
    let entries =
      match ids with
      | [] -> Experiments.Registry.all
      | ids ->
        List.map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %S\n" id;
              exit 2)
          ids
    in
    (* one ctx for the whole selection: references and profiles are
       computed once and shared across experiments *)
    let ctx = Runner.Exec.create_ctx ?jobs ?cache_dir () in
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Runner.Report.render format ppf
          (Runner.Exec.run ~label:e.id ctx e.plan))
      entries;
    if diag then begin
      let cfg = Config.Machine.baseline in
      List.iter
        (fun (spec : Workload.Spec.t) ->
          let p =
            Experiments.Exp_common.profile ctx.Runner.Exec.cache cfg
              (Experiments.Exp_common.src spec)
          in
          let tr =
            Synth.Generate.generate
              ~target_length:Experiments.Exp_common.syn_length p
              ~seed:Experiments.Exp_common.seed
          in
          let d = Diag.compare ~label:spec.Workload.Spec.name p tr in
          match format with
          | Runner.Report.Json ->
            print_string (Telemetry.Json.to_string (Diag.to_json d) ^ "\n")
          | Runner.Report.Text | Runner.Report.Csv ->
            print_string (Diag.render_text d))
        Experiments.Exp_common.benches
    end;
    (match replicas with
    | None -> ()
    | Some n ->
      (* dispersion context for the tables above: how much of each
         number is seed noise *)
      let cfg = Config.Machine.baseline in
      List.iter
        (fun (spec : Workload.Spec.t) ->
          let p =
            Experiments.Exp_common.profile ctx.Runner.Exec.cache cfg
              (Experiments.Exp_common.src spec)
          in
          let r =
            Statsim.replicate ~jobs:ctx.Runner.Exec.jobs ~stream:true
              ~target_length:Experiments.Exp_common.syn_length cfg p
              ~master_seed:Experiments.Exp_common.seed ~replicas:n
          in
          match format with
          | Runner.Report.Json ->
            print_string
              (Telemetry.Json.to_string
                 (Telemetry.Json.Obj
                    [
                      ("bench", Telemetry.Json.Str spec.Workload.Spec.name);
                      ("replication", Synth.Replicate.to_json r);
                    ])
              ^ "\n")
          | Runner.Report.Text | Runner.Report.Csv ->
            Format.printf "%s %a" spec.Workload.Spec.name
              (fun ppf -> Synth.Replicate.render_text ppf)
              r)
        Experiments.Exp_common.benches);
    if Telemetry.enabled () then begin
      let snap = Telemetry.snapshot () in
      (match format with
      | Runner.Report.Json -> print_string (Telemetry.render_json snap)
      | Runner.Report.Text | Runner.Report.Csv -> Telemetry.render_text ppf snap);
    end;
    match trace_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Telemetry.Json.to_string (Telemetry.chrome_trace ()));
      output_char oc '\n';
      close_out oc;
      Printf.printf "Chrome trace written to %s (load in chrome://tracing)\n"
        path
  in
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment id(s).")
  in
  let trace_out_arg =
    let doc =
      "Capture per-job runner spans and write them to $(docv) as Chrome \
       trace-event JSON (one track per worker domain; open in \
       chrome://tracing or Perfetto)."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let diag_arg =
    let doc =
      "After the reports, print a fidelity-observatory divergence report \
       (see $(b,statsim diag)) for every selected workload."
    in
    Arg.(value & flag & info [ "diag" ] ~doc)
  in
  let exp_replicas_arg =
    let doc =
      "After the reports, run $(docv) streamed replicas per workload (seeds \
       split from the experiments' fixed master seed) and print the IPC and \
       stall-fraction dispersion — how much of each table entry is seed \
       noise."
    in
    Arg.(value & opt (some int) None & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let doc = "regenerate one of the paper's tables or figures" in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ ids_arg $ format_arg $ jobs_arg $ telemetry_arg
      $ cache_dir_arg $ trace_out_arg $ diag_arg $ exp_replicas_arg)

(* --- design-space exploration: statsim dse --- *)

let dse_cmd =
  let run sweep_file bench length syn seed replicas jobs format telemetry
      cache_dir max_points pareto_out =
    if telemetry then Telemetry.set_enabled true;
    let sweep =
      match Dse.Sweep.load_file sweep_file with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    let spec = spec_of_name bench in
    (* same ctx as `experiment`: the sweep's one profile and one plan go
       through the shared memo cache and, with --cache-dir, the
       persistent store — a warm store resumes a sweep without
       recollecting anything *)
    let ctx = Runner.Exec.create_ctx ?jobs ?cache_dir () in
    match
      Dse.Driver.run ~cache:ctx.Runner.Exec.cache ~jobs:ctx.Runner.Exec.jobs
        ~replicas ?max_points ~length ~target_length:syn ~sweep ~bench:spec
        ~seed ()
    with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
    | Ok r ->
      Runner.Report.render format Format.std_formatter (Dse.Driver.to_report r);
      (match pareto_out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        Runner.Report.to_csv ppf (Dse.Driver.pareto_report r);
        Format.pp_print_flush ppf ();
        close_out oc;
        (* stderr: --format=json must stay a clean document on stdout *)
        Printf.eprintf "pareto frontier CSV written to %s\n" path);
      if Telemetry.enabled () then begin
        let snap = Telemetry.snapshot () in
        match format with
        | Runner.Report.Json -> print_string (Telemetry.render_json snap)
        | Runner.Report.Text | Runner.Report.Csv ->
          Telemetry.render_text Format.std_formatter snap
      end
  in
  let sweep_arg =
    let doc =
      "Sweep file (JSON): named $(b,Config.Machine) axes with value lists \
       or log2 ranges, combined with cross/zip. See examples/*.json."
    in
    Arg.(
      required
      & opt (some file) None
      & info [ "sweep" ] ~docv:"FILE" ~doc)
  in
  let dse_replicas_arg =
    let doc =
      "Replicas per design point (seeds split deterministically from \
       $(b,--seed)); the report's CI half-widths and the CI-aware Pareto \
       dominance test need at least 2."
    in
    Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let max_points_arg =
    let doc =
      "Raise the sweep expansion guard (default: the sweep file's own \
       $(b,max_points), else 4096)."
    in
    Arg.(value & opt (some int) None & info [ "max-points" ] ~docv:"N" ~doc)
  in
  let pareto_out_arg =
    let doc = "Also write the Pareto frontier as CSV to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "pareto-out" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "design-space exploration: expand a sweep file into design points, \
     evaluate all of them against one shared profile and compiled plan, \
     and report the CI-aware IPC/EDP Pareto frontier"
  in
  Cmd.v (Cmd.info "dse" ~doc)
    Term.(
      const run $ sweep_arg $ bench_arg $ length_arg $ syn_arg $ seed_arg
      $ dse_replicas_arg $ jobs_arg $ format_arg $ telemetry_arg
      $ cache_dir_arg $ max_points_arg $ pareto_out_arg)

let dot_cmd =
  let run bench length k cfg_out sfg_out =
    let spec = spec_of_name bench in
    let prog = Workload.Suite.program spec in
    (match cfg_out with
    | Some path ->
      Workload.Cfg_dot.to_file prog path;
      Printf.printf "CFG written to %s\n" path
    | None -> ());
    match sfg_out with
    | Some path ->
      let p =
        Statsim.profile ~k Config.Machine.baseline
          (Workload.Suite.stream spec ~length)
      in
      Profile.Sfg_dot.to_file p path;
      Printf.printf "SFG written to %s\n" path
    | None -> ()
  in
  let cfg_arg =
    Arg.(value & opt (some string) None & info [ "cfg" ] ~docv:"FILE"
           ~doc:"Write the program's control-flow graph as Graphviz dot.")
  in
  let sfg_arg =
    Arg.(value & opt (some string) None & info [ "sfg" ] ~docv:"FILE"
           ~doc:"Profile the workload and write the SFG as Graphviz dot.")
  in
  let doc = "export control-flow / statistical-flow graphs as Graphviz dot" in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ bench_arg $ length_arg $ k_arg $ cfg_arg $ sfg_arg)

(* --- cache maintenance: statsim cache stats|gc|clear --- *)

let open_store cache_dir =
  let dir =
    match cache_dir with
    | Some d -> d
    | None -> (
      match Sys.getenv_opt "REPRO_CACHE_DIR" with
      | Some d when d <> "" -> d
      | Some _ | None ->
        prerr_endline
          "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR";
        exit 2)
  in
  Store.open_root dir

let cache_cmd =
  let stats_cmd =
    let run cache_dir =
      let s = open_store cache_dir in
      let d = Store.disk_stats s in
      Printf.printf "cache directory:     %s\n" (Store.root s);
      Printf.printf "entries:             %d\n" d.Store.entries;
      Printf.printf "total bytes:         %d\n" d.Store.total_bytes;
      Printf.printf "quarantined entries: %d\n" d.Store.quarantine_entries
    in
    let doc = "print entry count and byte totals of the artifact store" in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ cache_dir_arg)
  in
  let gc_cmd =
    let run cache_dir max_bytes =
      let s = open_store cache_dir in
      let evicted, freed = Store.gc s ~max_bytes in
      let d = Store.disk_stats s in
      Printf.printf "evicted %d entr%s (%d bytes); %d entr%s (%d bytes) remain\n"
        evicted
        (if evicted = 1 then "y" else "ies")
        freed d.Store.entries
        (if d.Store.entries = 1 then "y" else "ies")
        d.Store.total_bytes
    in
    let max_bytes_arg =
      let doc =
        "Byte budget: evict least-recently-used entries until the store \
         fits."
      in
      Arg.(
        required
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"BYTES" ~doc)
    in
    let doc = "shrink the artifact store to a byte budget (LRU by atime)" in
    Cmd.v (Cmd.info "gc" ~doc) Term.(const run $ cache_dir_arg $ max_bytes_arg)
  in
  let clear_cmd =
    let run cache_dir =
      let s = open_store cache_dir in
      Store.clear s;
      Printf.printf "cleared %s\n" (Store.root s)
    in
    let doc = "remove every entry from the artifact store" in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ cache_dir_arg)
  in
  let doc = "inspect and maintain the persistent artifact store" in
  Cmd.group (Cmd.info "cache" ~doc) [ stats_cmd; gc_cmd; clear_cmd ]

(* --- simulation service: statsim serve / statsim client --- *)

let socket_arg =
  let doc =
    "Unix-domain socket path (daemon: listen here; client: connect here)."
  in
  Arg.(
    value & opt string "./statsim.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run socket tcp_port workers queue jobs cache_dir max_frame telemetry
      no_obs access_log log_sample =
    if telemetry then Telemetry.set_enabled true;
    let cfg =
      {
        (Server.Daemon.default_config ~socket_path:socket) with
        Server.Daemon.tcp = Option.map (fun p -> ("127.0.0.1", p)) tcp_port;
        workers;
        queue_depth = queue;
        jobs = Option.value jobs ~default:1;
        cache_dir;
        max_frame;
        obs = not no_obs;
        access_log;
        log_sample;
      }
    in
    match Server.Daemon.serve cfg with
    | () -> ()
    | exception Failure msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let tcp_port_arg =
    let doc = "Also listen on 127.0.0.1:$(docv) (TCP)." in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains executing requests." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission-queue depth; further requests are shed with a structured \
       $(b,overloaded) reply."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let max_frame_arg =
    let doc = "Largest accepted request frame payload, in bytes." in
    Arg.(
      value
      & opt int Server.Frame.default_max_payload
      & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let telemetry_arg =
    let doc =
      "Collect telemetry (per-request spans, server.* counters) for the \
       daemon's lifetime."
    in
    Arg.(value & flag & info [ "telemetry" ] ~doc)
  in
  let no_obs_arg =
    let doc =
      "Disable the serve observability plane (per-op rolling p50/p95/p99 \
       windows, deadline-miss and shed ratios, in-flight gauge — the \
       $(b,metrics) op). On by default; disabled, every hook is a single \
       atomic flag read."
    in
    Arg.(value & flag & info [ "no-obs" ] ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSON line per request (id, op, outcome, queue_ns, \
       service_ns, bytes, traced) to $(docv); flushed on SIGTERM drain."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH" ~doc)
  in
  let log_sample_arg =
    let doc = "Keep every $(docv)-th access-log line (1 = keep all)." in
    Arg.(value & opt int 1 & info [ "log-sample" ] ~docv:"N" ~doc)
  in
  let doc =
    "run the simulation-as-a-service daemon: all clients share one hot \
     profile/plan/EDS cache; SIGTERM/SIGINT drain gracefully"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_port_arg $ workers_arg $ queue_arg
      $ jobs_arg $ cache_dir_arg $ max_frame_arg $ telemetry_arg $ no_obs_arg
      $ access_log_arg $ log_sample_arg)

(* client / top shared: connect over the Unix socket or --tcp HOST:PORT *)
let connect_service ~socket ~tcp =
  match tcp with
  | None -> Server.Client.connect ~socket
  | Some hp -> (
    match String.rindex_opt hp ':' with
    | Some i ->
      let host = String.sub hp 0 i in
      let port =
        match
          int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1))
        with
        | Some p -> p
        | None -> failwith ("bad --tcp " ^ hp)
      in
      Server.Client.connect_tcp ~host ~port
    | None -> failwith ("bad --tcp " ^ hp))

let tcp_arg =
  let doc = "Connect over TCP instead of the Unix socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let client_cmd =
  let run socket tcp op params_str deadline_ms repeat parallel raw =
    let params =
      match Telemetry.Json.of_string params_str with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "bad --params: %s\n" e;
        exit 2
    in
    let connect () = connect_service ~socket ~tcp in
    (* one connection per worker thread, [repeat] calls on it; replies
       are printed after all joins, in worker order, so output is
       deterministic under --parallel *)
    let one () =
      match connect () with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message e))
      | exception Failure m -> Error m
      | c ->
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () ->
            let rec go i acc =
              if i >= repeat then Ok (List.rev acc)
              else
                match Server.Client.call c ?deadline_ms ~op params with
                | Error e -> Error e
                | Ok r -> go (i + 1) (r :: acc)
            in
            go 0 [])
    in
    let print_reply (r : Server.Protocol.reply) =
      match r.Server.Protocol.outcome with
      | Error (code, msg) ->
        Printf.eprintf "error %s: %s\n" (Server.Protocol.code_name code) msg;
        false
      | Ok result ->
        (if raw then print_string (Telemetry.Json.to_string result ^ "\n")
         else
           match Telemetry.Json.member "output" result with
           | Some (Telemetry.Json.Str s) -> print_string s
           | _ -> print_string (Telemetry.Json.to_string result ^ "\n"));
        List.iter
          (fun w -> Printf.eprintf "%s\n" w)
          (Server.Ops.warnings result);
        (match Telemetry.Json.member "check_message" result with
        | Some (Telemetry.Json.Str m) -> Printf.eprintf "%s\n" m
        | _ -> ());
        (match Telemetry.Json.member "check_ok" result with
        | Some (Telemetry.Json.Bool false) -> false
        | _ -> true)
    in
    let results =
      if parallel <= 1 then [| one () |]
      else begin
        let results = Array.make parallel (Error "not run") in
        let threads =
          Array.init parallel
            (fun i -> Thread.create (fun () -> results.(i) <- one ()) ())
        in
        Array.iter Thread.join threads;
        results
      end
    in
    let ok =
      Array.fold_left
        (fun ok -> function
          | Error e ->
            Printf.eprintf "%s\n" e;
            false
          | Ok replies -> List.fold_left (fun ok r -> print_reply r && ok) ok replies)
        true results
    in
    if not ok then exit 1
  in
  let op_arg =
    let doc =
      Printf.sprintf "Request op: one of %s."
        (String.concat ", " Server.Ops.op_names)
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let params_arg =
    let doc = "Op parameters as a JSON object." in
    Arg.(value & opt string "{}" & info [ "params" ] ~docv:"JSON" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-request deadline; an expired request answers \
       $(b,deadline_exceeded)."
    in
    Arg.(
      value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let repeat_arg =
    let doc = "Send the request $(docv) times on one connection." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let parallel_arg =
    let doc =
      "Fire the request from $(docv) concurrent connections (each doing \
       $(b,--repeat) calls); output is printed in connection order."
    in
    Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N" ~doc)
  in
  let raw_arg =
    let doc =
      "Print the full result object as JSON instead of the $(b,output) \
       field — exposes structured members such as an opt-in request's \
       $(b,trace) span tree."
    in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let doc = "send one request to a running statsim serve daemon" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ op_arg $ params_arg $ deadline_arg
      $ repeat_arg $ parallel_arg $ raw_arg)

let top_cmd =
  let module Json = Telemetry.Json in
  let num j k =
    match Option.bind (Json.member k j) Json.to_num with
    | Some v -> v
    | None -> 0.0
  in
  let render m =
    let b = Buffer.create 1024 in
    Printf.bprintf b "statsim top — inflight %d, queue depth %d\n\n"
      (int_of_float (num m "inflight"))
      (int_of_float (num m "queue_depth"));
    Printf.bprintf b "%-12s %8s %8s %6s | %8s %8s %9s %9s %9s %9s %6s %6s\n"
      "OP" "REQS" "OK" "ERR" "1m REQS" "REQ/S" "P50 ms" "P95 ms" "P99 ms"
      "QP95 ms" "MISS%" "SHED%";
    (match Json.member "ops" m with
    | Some (Json.Arr ops) ->
      List.iter
        (fun o ->
          let op =
            match Option.bind (Json.member "op" o) Json.to_str with
            | Some s -> s
            | None -> "?"
          in
          let requests = num o "requests" in
          let ok =
            match Json.member "outcomes" o with
            | Some oc -> num oc "ok"
            | None -> 0.0
          in
          let w1 =
            match Json.member "windows" o with
            | Some w -> Json.member "1m" w
            | None -> None
          in
          let w1 = Option.value w1 ~default:(Json.Obj []) in
          let w1_reqs = num w1 "requests" in
          let service = Option.value (Json.member "service" w1)
              ~default:(Json.Obj []) in
          let queue = Option.value (Json.member "queue" w1)
              ~default:(Json.Obj []) in
          let ms ns = ns /. 1e6 in
          Printf.bprintf b
            "%-12s %8.0f %8.0f %6.0f | %8.0f %8.2f %9.3f %9.3f %9.3f %9.3f \
             %6.2f %6.2f\n"
            op requests ok (requests -. ok) w1_reqs (w1_reqs /. 60.0)
            (ms (num service "p50_ns"))
            (ms (num service "p95_ns"))
            (ms (num service "p99_ns"))
            (ms (num queue "p95_ns"))
            (100.0 *. num w1 "deadline_miss_ratio")
            (100.0 *. num w1 "shed_ratio"))
        ops
    | _ -> ());
    Buffer.contents b
  in
  let run socket tcp interval count =
    let once () =
      match connect_service ~socket ~tcp with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message e))
      | exception Failure m -> Error m
      | c ->
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () ->
            match Server.Client.call c ~op:"metrics" (Json.Obj []) with
            | Error e -> Error e
            | Ok r -> (
              match r.Server.Protocol.outcome with
              | Error (code, msg) ->
                Error
                  (Printf.sprintf "error %s: %s"
                     (Server.Protocol.code_name code) msg)
              | Ok result -> (
                match Json.member "metrics" result with
                | Some m -> Ok m
                | None -> Error "reply carries no metrics object")))
    in
    let rec loop i =
      match once () with
      | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1
      | Ok m ->
        (* one-shot prints plainly; a refreshing session clears first *)
        if count <> 1 then print_string "\027[2J\027[H";
        print_string (render m);
        flush stdout;
        if count = 0 || i < count then begin
          (try Unix.sleepf interval
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop (i + 1)
        end
    in
    loop 1
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let count_arg =
    let doc = "Stop after $(docv) polls (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let doc =
    "live per-op latency/throughput table for a running statsim serve \
     daemon (polls the $(b,metrics) op)"
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ socket_arg $ tcp_arg $ interval_arg $ count_arg)

let list_cmd =
  let run () =
    Printf.printf "workloads:\n  %s\n\nexperiments:\n"
      (String.concat " " Workload.Suite.names);
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Printf.printf "  %-8s %s\n" e.id e.description)
      Experiments.Registry.all
  in
  let doc = "list available workloads and experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "statistical simulation for processor design studies (ISCA 2004 reproduction)" in
  let info = Cmd.info "statsim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ simulate_cmd; estimate_cmd; profile_cmd; diag_cmd; experiment_cmd;
         dse_cmd; serve_cmd; client_cmd; top_cmd; cache_cmd; dot_cmd;
         list_cmd ]))
